#include "util/matrix.hpp"

#include <cmath>

namespace mobiwlan {

CMatrix::CMatrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols) {}

CMatrix::CMatrix(std::initializer_list<std::initializer_list<cplx>> rows) {
  rows_ = rows.size();
  cols_ = rows_ > 0 ? rows.begin()->size() : 0;
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    if (row.size() != cols_) throw std::invalid_argument("ragged initializer");
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

CMatrix CMatrix::identity(std::size_t n) {
  CMatrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

CMatrix CMatrix::column(const std::vector<cplx>& values) {
  CMatrix m(values.size(), 1);
  for (std::size_t i = 0; i < values.size(); ++i) m(i, 0) = values[i];
  return m;
}

CMatrix CMatrix::operator+(const CMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("dimension mismatch in +");
  CMatrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] + other.data_[i];
  return out;
}

CMatrix CMatrix::operator-(const CMatrix& other) const {
  if (rows_ != other.rows_ || cols_ != other.cols_)
    throw std::invalid_argument("dimension mismatch in -");
  CMatrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] - other.data_[i];
  return out;
}

CMatrix CMatrix::operator*(const CMatrix& other) const {
  if (cols_ != other.rows_) throw std::invalid_argument("dimension mismatch in *");
  CMatrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = (*this)(i, k);
      if (a == cplx{}) continue;
      for (std::size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

CMatrix CMatrix::operator*(cplx scalar) const {
  CMatrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] = data_[i] * scalar;
  return out;
}

CMatrix CMatrix::hermitian() const {
  CMatrix out(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r)
    for (std::size_t c = 0; c < cols_; ++c) out(c, r) = std::conj((*this)(r, c));
  return out;
}

CMatrix CMatrix::inverse() const {
  if (rows_ != cols_) throw std::domain_error("inverse of non-square matrix");
  const std::size_t n = rows_;
  CMatrix a(*this);
  CMatrix inv = identity(n);
  for (std::size_t col = 0; col < n; ++col) {
    // Partial pivoting: find the largest-magnitude entry in this column.
    std::size_t pivot = col;
    double best = std::abs(a(col, col));
    for (std::size_t r = col + 1; r < n; ++r) {
      if (std::abs(a(r, col)) > best) {
        best = std::abs(a(r, col));
        pivot = r;
      }
    }
    if (best < 1e-14) throw std::domain_error("singular matrix");
    if (pivot != col) {
      for (std::size_t c = 0; c < n; ++c) {
        std::swap(a(col, c), a(pivot, c));
        std::swap(inv(col, c), inv(pivot, c));
      }
    }
    const cplx d = a(col, col);
    for (std::size_t c = 0; c < n; ++c) {
      a(col, c) /= d;
      inv(col, c) /= d;
    }
    for (std::size_t r = 0; r < n; ++r) {
      if (r == col) continue;
      const cplx factor = a(r, col);
      if (factor == cplx{}) continue;
      for (std::size_t c = 0; c < n; ++c) {
        a(r, c) -= factor * a(col, c);
        inv(r, c) -= factor * inv(col, c);
      }
    }
  }
  return inv;
}

CMatrix CMatrix::pseudo_inverse() const {
  // Full row rank assumed (n_streams <= n_antennas): H^+ = H^H (H H^H)^-1.
  const CMatrix hh = hermitian();
  const CMatrix gram = (*this) * hh;
  return hh * gram.inverse();
}

double CMatrix::frobenius_norm() const {
  double sum = 0.0;
  for (const auto& v : data_) sum += std::norm(v);
  return std::sqrt(sum);
}

std::vector<cplx> CMatrix::col_vector(std::size_t c) const {
  std::vector<cplx> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

std::vector<cplx> CMatrix::row_vector(std::size_t r) const {
  std::vector<cplx> out(cols_);
  for (std::size_t c = 0; c < cols_; ++c) out[c] = (*this)(r, c);
  return out;
}

CMatrix CMatrix::normalized(double target) const {
  const double norm = frobenius_norm();
  if (norm == 0.0) return *this;
  return (*this) * cplx(target / norm, 0.0);
}

cplx inner_product(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  if (a.size() != b.size()) throw std::invalid_argument("inner_product size mismatch");
  cplx sum{};
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::conj(a[i]) * b[i];
  return sum;
}

double vector_norm(const std::vector<cplx>& v) {
  double sum = 0.0;
  for (const auto& x : v) sum += std::norm(x);
  return std::sqrt(sum);
}

}  // namespace mobiwlan
