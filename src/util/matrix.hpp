// matrix.hpp — small dense complex matrices for MIMO precoding.
//
// The beamforming substrate (phy/beamforming.*) needs Hermitian transpose,
// matrix products, and (pseudo-)inverses of matrices no larger than ~4x4.
// A tiny value-semantic dense matrix with Gaussian elimination keeps the
// dependency surface at zero while staying easy to verify in tests.
#pragma once

#include <complex>
#include <cstddef>
#include <initializer_list>
#include <stdexcept>
#include <vector>

namespace mobiwlan {

using cplx = std::complex<double>;

/// Dense row-major complex matrix.
class CMatrix {
 public:
  CMatrix() = default;
  CMatrix(std::size_t rows, std::size_t cols);
  /// Construct from nested initializer lists; all rows must be equal length.
  CMatrix(std::initializer_list<std::initializer_list<cplx>> rows);

  static CMatrix identity(std::size_t n);
  /// Column vector from values.
  static CMatrix column(const std::vector<cplx>& values);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  cplx& operator()(std::size_t r, std::size_t c) { return data_[r * cols_ + c]; }
  const cplx& operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  CMatrix operator+(const CMatrix& other) const;
  CMatrix operator-(const CMatrix& other) const;
  CMatrix operator*(const CMatrix& other) const;
  CMatrix operator*(cplx scalar) const;

  /// Conjugate (Hermitian) transpose.
  CMatrix hermitian() const;

  /// Inverse via Gaussian elimination with partial pivoting.
  /// Throws std::domain_error if the matrix is singular or non-square.
  CMatrix inverse() const;

  /// Moore-Penrose pseudo-inverse for full-row-rank matrices:
  /// H^+ = H^H (H H^H)^{-1}. This is the zero-forcing precoder form used when
  /// the AP has at least as many antennas as served streams.
  CMatrix pseudo_inverse() const;

  /// Frobenius norm.
  double frobenius_norm() const;

  /// Column `c` as a vector.
  std::vector<cplx> col_vector(std::size_t c) const;
  /// Row `r` as a vector.
  std::vector<cplx> row_vector(std::size_t r) const;

  /// Scales so that the Frobenius norm equals `target` (no-op on zero matrix).
  CMatrix normalized(double target = 1.0) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Inner product <a, b> = a^H b. Requires equal sizes.
cplx inner_product(const std::vector<cplx>& a, const std::vector<cplx>& b);

/// Euclidean norm of a complex vector.
double vector_norm(const std::vector<cplx>& v);

}  // namespace mobiwlan
