// prefetch.hpp — software prefetch for pointer-chasing hot loops.
//
// The campus fused pass walks thousands of pooled sessions per epoch; each
// step dereferences a handful of heap buffers (channel realization, walk
// waypoints, classifier anchor, RA tables) whose lines have been evicted
// since the previous epoch. With ~1.5us of arithmetic per session there is
// ample latency to hide: issuing the next slot's loads one iteration ahead
// overlaps its misses with the current slot's compute. Prefetches never
// change observable state, so every use is digest-neutral by construction.
#pragma once

#include <cstddef>

namespace mobiwlan {

/// Prefetches the cache lines covering [p, p + bytes). `for_write` hints
/// exclusive ownership (the lines are about to be mutated). A null p or
/// zero bytes is a no-op; on non-GNU toolchains the whole call is.
inline void prefetch_lines(const void* p, std::size_t bytes,
                           bool for_write = false) {
#if defined(__GNUC__) || defined(__clang__)
  if (p == nullptr) return;
  const char* c = static_cast<const char*>(p);
  if (for_write) {
    for (std::size_t off = 0; off < bytes; off += 64)
      __builtin_prefetch(c + off, 1, 3);
  } else {
    for (std::size_t off = 0; off < bytes; off += 64)
      __builtin_prefetch(c + off, 0, 3);
  }
#else
  (void)p;
  (void)bytes;
  (void)for_write;
#endif
}

}  // namespace mobiwlan
