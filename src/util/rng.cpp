#include "util/rng.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

#include <cmath>
#include <numbers>

#include "util/fastmath.hpp"
#include "util/lane_math.hpp"
#include "util/simd.hpp"
#include "util/simd_math.hpp"

namespace mobiwlan {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

#if defined(__x86_64__)

// The elementwise log/sincos vector kernels live in util/simd_math.hpp
// (shared with the batched channel engine); the xoshiro draws stay scalar
// and sequential, so the uniform stream is identical to the scalar path.

// Four Box-Muller transforms: comp[0..7] += per * r_j * {cos, sin}(theta_j).
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) void box_muller4(const double* u1,
                                                     const double* u2,
                                                     double per, double* comp) {
  const __m256d r = _mm256_sqrt_pd(_mm256_mul_pd(
      _mm256_set1_pd(-2.0), simdmath::vlog_pos(_mm256_loadu_pd(u1))));
  const __m256d theta = _mm256_mul_pd(
      _mm256_set1_pd(2.0 * std::numbers::pi), _mm256_loadu_pd(u2));
  __m256d s, c;
  simdmath::vsincos(theta, s, c);
  const __m256d amp = _mm256_mul_pd(_mm256_set1_pd(per), r);
  const __m256d vc = _mm256_mul_pd(amp, c);
  const __m256d vs = _mm256_mul_pd(amp, s);
  // Interleave (c0,s0,c1,s1 | c2,s2,c3,s3) to match the scalar layout.
  const __m256d lo = _mm256_unpacklo_pd(vc, vs);
  const __m256d hi = _mm256_unpackhi_pd(vc, vs);
  const __m256d p0 = _mm256_permute2f128_pd(lo, hi, 0x20);
  const __m256d p1 = _mm256_permute2f128_pd(lo, hi, 0x31);
  _mm256_storeu_pd(comp, _mm256_add_pd(_mm256_loadu_pd(comp), p0));
  _mm256_storeu_pd(comp + 4, _mm256_add_pd(_mm256_loadu_pd(comp + 4), p1));
}

#endif  // __x86_64__

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // A state of all zeros is the one invalid xoshiro state; splitmix64 cannot
  // produce four zero words from any seed, so no further check is needed.
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to keep the log finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

double Rng::exponential(double mean) { return -mean * std::log(1.0 - uniform()); }

double Rng::rayleigh(double sigma) {
  return sigma * std::sqrt(-2.0 * std::log(1.0 - uniform()));
}

std::complex<double> Rng::complex_gaussian(double variance) {
  const double per_component = std::sqrt(variance / 2.0);
  return {gaussian(0.0, per_component), gaussian(0.0, per_component)};
}

void Rng::add_complex_gaussian(std::complex<double>* dst, std::size_t n,
                               double variance) {
  if (n == 0) return;
  const double per = std::sqrt(variance / 2.0);
  // std::complex<double> is array-layout-compatible with double[2].
  double* comp = reinterpret_cast<double*>(dst);
  const std::size_t total = 2 * n;
  std::size_t k = 0;
  // A pending cached deviate feeds the first component, exactly as a
  // gaussian() call would consume it; the pairing below then stays shifted
  // by one for the rest of the block.
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    comp[k++] += per * cached_gaussian_;
  }
  // The component range splits at the same boundary on every tier: the
  // 8-aligned prefix is what the AVX2 kernel covers on vector hosts, so a
  // non-vector host must reproduce it bitwise through the lane-exact
  // mirrors; the sub-8 remainder runs the same scalar code on every tier
  // and keeps the original fastmath kernels (those bits are frozen by the
  // per-link golden fixtures).
  const std::size_t vec_end = k + 8 * ((total - k) / 8);
#if defined(__x86_64__)
  // Four transforms per iteration on AVX2+FMA hosts (checked per call so
  // MOBIWLAN_FORCE_SCALAR and the simd test hook reach this path). The
  // uniforms are drawn scalar in the canonical order (u1 then u2 per
  // transform), so the stream position after the block matches the scalar
  // path exactly.
  if (simd::use_avx2fma()) {
    double u1[4], u2[4];
    while (k < vec_end) {
      for (int j = 0; j < 4; ++j) {
        u1[j] = 1.0 - uniform();
        u2[j] = uniform();
      }
      box_muller4(u1, u2, per, comp + k);
      k += 8;
    }
  }
#endif
  // Lane-exact mirror of box_muller4: same log / sincos bit patterns
  // (lanemath == one lane of the vector kernels), same product order
  // (amp = per * r, then amp * {c, s}).
  while (k < vec_end) {
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * lanemath::log_pos(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    double s, c;
    lanemath::sincos(theta, s, c);
    const double amp = per * r;
    comp[k] += amp * c;
    comp[k + 1] += amp * s;
    k += 2;
  }
  // theta = 2*pi*u2 < 2*pi, well inside fastmath::kSincosMaxArg; the inline
  // kernel matches libm to ~2 ulp, orders of magnitude below the 1e-12
  // equivalence budget on noise components (~1e-5 in magnitude).
  while (total - k >= 2) {
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    double s, c;
    fastmath::sincos(theta, s, c);
    comp[k] += per * (r * c);
    comp[k + 1] += per * (r * s);
    k += 2;
  }
  if (k < total) {
    const double u1 = 1.0 - uniform();
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    double s, c;
    fastmath::sincos(theta, s, c);
    comp[k] += per * (r * c);
    cached_gaussian_ = r * s;
    has_cached_gaussian_ = true;
  }
}

std::complex<double> Rng::rician(double k_factor) {
  const double los_amplitude = std::sqrt(k_factor / (k_factor + 1.0));
  const double scatter_power = 1.0 / (k_factor + 1.0);
  const double los_phase = phase();
  return std::polar(los_amplitude, los_phase) + complex_gaussian(scatter_power);
}

double Rng::phase() { return uniform(0.0, 2.0 * std::numbers::pi); }

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::stream(std::uint64_t stream_id) const {
  std::uint64_t x = seed_ ^ stream_id;
  return Rng(splitmix64(x));
}

}  // namespace mobiwlan
