#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace mobiwlan {

namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
  // A state of all zeros is the one invalid xoshiro state; splitmix64 cannot
  // produce four zero words from any seed, so no further check is needed.
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

int Rng::uniform_int(int lo, int hi) {
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<int>(next_u64() % span);
}

double Rng::gaussian() {
  if (has_cached_gaussian_) {
    has_cached_gaussian_ = false;
    return cached_gaussian_;
  }
  // Box-Muller; u1 in (0,1] to keep the log finite.
  double u1 = 1.0 - uniform();
  double u2 = uniform();
  double r = std::sqrt(-2.0 * std::log(u1));
  double theta = 2.0 * std::numbers::pi * u2;
  cached_gaussian_ = r * std::sin(theta);
  has_cached_gaussian_ = true;
  return r * std::cos(theta);
}

double Rng::gaussian(double mean, double stddev) { return mean + stddev * gaussian(); }

double Rng::exponential(double mean) { return -mean * std::log(1.0 - uniform()); }

double Rng::rayleigh(double sigma) {
  return sigma * std::sqrt(-2.0 * std::log(1.0 - uniform()));
}

std::complex<double> Rng::complex_gaussian(double variance) {
  const double per_component = std::sqrt(variance / 2.0);
  return {gaussian(0.0, per_component), gaussian(0.0, per_component)};
}

std::complex<double> Rng::rician(double k_factor) {
  const double los_amplitude = std::sqrt(k_factor / (k_factor + 1.0));
  const double scatter_power = 1.0 / (k_factor + 1.0);
  const double los_phase = phase();
  return std::polar(los_amplitude, los_phase) + complex_gaussian(scatter_power);
}

double Rng::phase() { return uniform(0.0, 2.0 * std::numbers::pi); }

bool Rng::chance(double p) { return uniform() < p; }

Rng Rng::split() { return Rng(next_u64()); }

Rng Rng::stream(std::uint64_t stream_id) const {
  std::uint64_t x = seed_ ^ stream_id;
  return Rng(splitmix64(x));
}

}  // namespace mobiwlan
