// rng.hpp — deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in mobiwlan draws from an explicitly seeded Rng so
// that experiments are reproducible run-to-run; bench binaries derive one Rng
// per trial from a master seed.
#pragma once

#include <complex>
#include <cstddef>
#include <cstdint>

namespace mobiwlan {

/// xoshiro256++ generator with splitmix64 seeding.
///
/// Chosen over std::mt19937 for speed and for a compact, well-defined state
/// that makes streams cheap to fork (`split()`), which the channel simulator
/// uses to give every multipath component an independent substream.
class Rng {
 public:
  /// Seeds the four words of state from a single 64-bit seed via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit output. Inline: the campus MAC loop draws ~20 of these
  /// per session-step, so the call overhead is measurable at scale.
  std::uint64_t next_u64() {
    const std::uint64_t result = rotl_(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl_(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1): 53 high bits of next_u64.
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int uniform_int(int lo, int hi) {
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next_u64() % span);
  }

  /// Standard normal via Box-Muller (caches the second deviate).
  double gaussian();

  /// Normal with the given mean and standard deviation.
  double gaussian(double mean, double stddev);

  /// Exponential with the given mean. Requires mean > 0.
  double exponential(double mean);

  /// Rayleigh-distributed amplitude with scale sigma:
  /// the envelope of a complex Gaussian with per-component stddev sigma.
  double rayleigh(double sigma);

  /// Circularly-symmetric complex Gaussian with E[|z|^2] = variance.
  std::complex<double> complex_gaussian(double variance = 1.0);

  /// Adds an independent complex Gaussian draw to each of dst[0..n):
  /// value-for-value identical to `for i: dst[i] += complex_gaussian(v)`
  /// (same uniforms, same Box-Muller arithmetic, same cached-deviate
  /// handling), but with the transform inlined in one tight loop — the
  /// channel sampler adds noise to hundreds of CSI entries per sample, and
  /// the per-call overhead of gaussian() dominates otherwise.
  void add_complex_gaussian(std::complex<double>* dst, std::size_t n,
                            double variance = 1.0);

  /// Complex sample with Rician statistics: a deterministic (LOS) component of
  /// power k/(k+1) plus scattered power 1/(k+1), unit total mean power.
  /// `k_factor` is linear (not dB).
  std::complex<double> rician(double k_factor);

  /// Uniform phase in [0, 2*pi).
  double phase();

  /// True with probability p (clamped to [0,1]).
  bool chance(double p) { return uniform() < p; }

  /// Forks an independently-seeded generator from this stream.
  Rng split();

  /// Derives the generator for numbered substream `stream_id`.
  ///
  /// The substream seed is `splitmix64(seed ^ stream_id)` — a pure function
  /// of the construction seed and the id, never of generator state — so
  /// `stream(i)` yields the same generator no matter how many draws have been
  /// taken or in which order streams are derived. This is the counter-based
  /// derivation the runtime experiment runner uses to give every parallel
  /// job an execution-order-independent Rng.
  Rng stream(std::uint64_t stream_id) const;

  /// The seed this generator was constructed with.
  std::uint64_t seed() const { return seed_; }

 private:
  static std::uint64_t rotl_(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t seed_;
  std::uint64_t s_[4];
  double cached_gaussian_ = 0.0;
  bool has_cached_gaussian_ = false;
};

}  // namespace mobiwlan
