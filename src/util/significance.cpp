#include "util/significance.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/stats.hpp"

namespace mobiwlan {

namespace {

std::vector<double> resample(const std::vector<double>& xs, Rng& rng) {
  std::vector<double> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i)
    out.push_back(xs[rng.uniform_int(0, static_cast<int>(xs.size()) - 1)]);
  return out;
}

BootstrapInterval interval_from(std::vector<double> stats, double point,
                                double confidence) {
  std::sort(stats.begin(), stats.end());
  const double alpha = (1.0 - confidence) / 2.0;
  const auto n = stats.size();
  const auto lo_idx = static_cast<std::size_t>(alpha * (n - 1));
  const auto hi_idx = static_cast<std::size_t>((1.0 - alpha) * (n - 1));
  return {stats[lo_idx], stats[hi_idx], point};
}

}  // namespace

BootstrapInterval bootstrap_median_ci(const std::vector<double>& samples,
                                      double confidence, int resamples,
                                      std::uint64_t seed) {
  if (samples.empty()) throw std::invalid_argument("empty sample");
  Rng rng(seed);
  std::vector<double> medians;
  medians.reserve(resamples);
  for (int i = 0; i < resamples; ++i)
    medians.push_back(median_of(resample(samples, rng)));
  return interval_from(std::move(medians), median_of(samples), confidence);
}

BootstrapInterval bootstrap_median_diff_ci(const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           double confidence, int resamples,
                                           std::uint64_t seed) {
  if (a.empty() || b.empty()) throw std::invalid_argument("empty sample");
  Rng rng(seed);
  std::vector<double> diffs;
  diffs.reserve(resamples);
  for (int i = 0; i < resamples; ++i)
    diffs.push_back(median_of(resample(a, rng)) - median_of(resample(b, rng)));
  return interval_from(std::move(diffs), median_of(a) - median_of(b), confidence);
}

bool median_significantly_greater(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  double confidence) {
  return bootstrap_median_diff_ci(a, b, confidence).lo > 0.0;
}

WilsonInterval wilson_interval(std::size_t successes, std::size_t total,
                               double z) {
  if (total == 0 || successes > total)
    throw std::invalid_argument("wilson_interval: bad counts");
  const double n = static_cast<double>(total);
  const double p = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double centre = p + z2 / (2.0 * n);
  const double margin = z * std::sqrt(p * (1.0 - p) / n + z2 / (4.0 * n * n));
  return {(centre - margin) / denom, (centre + margin) / denom, p};
}

}  // namespace mobiwlan
