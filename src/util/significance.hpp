// significance.hpp — confidence intervals for bench and fidelity results.
//
// Several benches claim "scheme A's median beats scheme B's" from a dozen
// trials; a bootstrap interval on the median difference says whether that
// survives resampling. The fidelity gate additionally reports Wilson score
// intervals on classification accuracies, which behave sensibly near 0% and
// 100% where the normal approximation collapses. Kept deliberately simple:
// percentile bootstrap with a deterministic seed so bench output is
// reproducible, and a closed-form Wilson interval.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace mobiwlan {

struct BootstrapInterval {
  double lo = 0.0;       ///< lower percentile bound
  double hi = 0.0;       ///< upper percentile bound
  double point = 0.0;    ///< the statistic on the original sample
};

/// Percentile-bootstrap CI for the median of `samples`.
BootstrapInterval bootstrap_median_ci(const std::vector<double>& samples,
                                      double confidence = 0.95,
                                      int resamples = 2000,
                                      std::uint64_t seed = 1);

/// Percentile-bootstrap CI for (median(a) - median(b)), resampling the two
/// groups independently (unpaired).
BootstrapInterval bootstrap_median_diff_ci(const std::vector<double>& a,
                                           const std::vector<double>& b,
                                           double confidence = 0.95,
                                           int resamples = 2000,
                                           std::uint64_t seed = 1);

/// True if the CI of median(a) - median(b) excludes zero from below
/// (i.e. a's median is significantly larger than b's).
bool median_significantly_greater(const std::vector<double>& a,
                                  const std::vector<double>& b,
                                  double confidence = 0.95);

struct WilsonInterval {
  double lo = 0.0;     ///< lower bound of the score interval
  double hi = 0.0;     ///< upper bound
  double point = 0.0;  ///< the raw proportion successes / total
};

/// Wilson score interval for a binomial proportion at the given z value
/// (default 1.96 ~ 95%). Requires total >= 1; successes <= total.
WilsonInterval wilson_interval(std::size_t successes, std::size_t total,
                               double z = 1.96);

}  // namespace mobiwlan
