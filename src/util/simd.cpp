#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mobiwlan::simd {

namespace {

// Sentinels for the forced-tier cell: kDeferToEnv consults the environment,
// kUnforcedBest ignores both the hook and the environment (the legacy
// set_force_scalar(0) semantics: "un-force, let cpuid decide").
constexpr int kDeferToEnv = -1;
constexpr int kUnforcedBest = 3;

bool truthy(const char* v) {
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

/// The tier the environment requests: 0/1/2, or kDeferToEnv when neither
/// MOBIWLAN_SIMD_TIER nor the legacy MOBIWLAN_FORCE_SCALAR alias is set.
/// An unrecognized MOBIWLAN_SIMD_TIER value is ignored (best tier).
int env_tier_request() {
  const char* tier = std::getenv("MOBIWLAN_SIMD_TIER");
  if (tier != nullptr && tier[0] != '\0') {
    if (std::strcmp(tier, "scalar") == 0) return 0;
    if (std::strcmp(tier, "avx2") == 0) return 1;
    if (std::strcmp(tier, "avx512") == 0) return 2;
    return kUnforcedBest;
  }
  if (truthy(std::getenv("MOBIWLAN_FORCE_SCALAR"))) return 0;
  return kDeferToEnv;
}

/// fp32 when MOBIWLAN_PRECISION is fp32/float32/f32; fp64 otherwise.
int env_precision_request() {
  const char* p = std::getenv("MOBIWLAN_PRECISION");
  if (p == nullptr || p[0] == '\0') return kDeferToEnv;
  if (std::strcmp(p, "fp32") == 0 || std::strcmp(p, "float32") == 0 ||
      std::strcmp(p, "f32") == 0)
    return 1;
  return 0;
}

std::atomic<int> g_forced_tier{kDeferToEnv};
std::atomic<int> g_forced_precision{kDeferToEnv};

/// The requested tier after the hook-then-environment cascade:
/// 0/1/2 = explicit tier, kUnforcedBest = best supported, kDeferToEnv =
/// nothing requested anywhere (also best supported).
int tier_request() {
  const int forced = g_forced_tier.load(std::memory_order_relaxed);
  if (forced != kDeferToEnv) return forced;
  static const int from_env = env_tier_request();
  return from_env;
}

}  // namespace

bool avx2fma_supported() {
#if defined(__x86_64__)
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool avx512_supported() {
#if defined(__x86_64__)
  static const bool supported =
      avx2fma_supported() && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512dq") && __builtin_cpu_supports("avx512vl");
  return supported;
#else
  return false;
#endif
}

Tier best_supported_tier() {
  if (avx512_supported()) return Tier::kAvx512;
  if (avx2fma_supported()) return Tier::kAvx2;
  return Tier::kScalar;
}

Tier active_tier() {
  const int req = tier_request();
  const Tier best = best_supported_tier();
  if (req == kDeferToEnv || req == kUnforcedBest) return best;
  // Graceful fallback: a tier the host lacks degrades to the best it has
  // (avx512 -> avx2 -> scalar); a tier below the best is honored as-is.
  const Tier requested = static_cast<Tier>(req);
  return requested < best ? requested : best;
}

void set_forced_tier(int tier) {
  if (tier < 0)
    g_forced_tier.store(kDeferToEnv, std::memory_order_relaxed);
  else
    g_forced_tier.store(tier > 2 ? 2 : tier, std::memory_order_relaxed);
}

Precision active_precision() {
  int req = g_forced_precision.load(std::memory_order_relaxed);
  if (req == kDeferToEnv) {
    static const int from_env = env_precision_request();
    req = from_env;
  }
  return req == 1 ? Precision::kFloat32 : Precision::kFloat64;
}

void set_forced_precision(int precision) {
  if (precision < 0)
    g_forced_precision.store(kDeferToEnv, std::memory_order_relaxed);
  else
    g_forced_precision.store(precision != 0 ? 1 : 0,
                             std::memory_order_relaxed);
}

const char* tier_name(Tier tier) {
  switch (tier) {
    case Tier::kScalar: return "scalar";
    case Tier::kAvx2: return "avx2";
    case Tier::kAvx512: return "avx512";
  }
  return "?";
}

const char* precision_name(Precision precision) {
  return precision == Precision::kFloat32 ? "fp32" : "fp64";
}

bool force_scalar() { return tier_request() == 0; }

void set_force_scalar(int forced) {
  if (forced < 0)
    g_forced_tier.store(kDeferToEnv, std::memory_order_relaxed);
  else if (forced != 0)
    g_forced_tier.store(0, std::memory_order_relaxed);
  else
    g_forced_tier.store(kUnforcedBest, std::memory_order_relaxed);
}

bool use_avx2fma() { return active_tier() >= Tier::kAvx2; }

bool use_avx512() { return active_tier() == Tier::kAvx512; }

}  // namespace mobiwlan::simd
