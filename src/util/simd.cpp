#include "util/simd.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace mobiwlan::simd {

namespace {

bool env_force_scalar() {
  const char* v = std::getenv("MOBIWLAN_FORCE_SCALAR");
  return v != nullptr && v[0] != '\0' && std::strcmp(v, "0") != 0;
}

// -1 = defer to the environment; 0/1 = test-hook override.
std::atomic<int> g_forced{-1};

}  // namespace

bool avx2fma_supported() {
#if defined(__x86_64__)
  static const bool supported =
      __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
  return supported;
#else
  return false;
#endif
}

bool force_scalar() {
  const int forced = g_forced.load(std::memory_order_relaxed);
  if (forced >= 0) return forced != 0;
  static const bool from_env = env_force_scalar();
  return from_env;
}

void set_force_scalar(int forced) {
  g_forced.store(forced < 0 ? -1 : (forced != 0), std::memory_order_relaxed);
}

bool use_avx2fma() { return avx2fma_supported() && !force_scalar(); }

}  // namespace mobiwlan::simd
