// simd.hpp — one switch for every runtime-dispatched SIMD kernel.
//
// The channel synthesis MAC (chan/channel.cpp), the batched engine
// (chan/channel_batch.cpp) and the Box-Muller noise fill (util/rng.cpp)
// carry ISA-specific variants selected at runtime so the build stays
// baseline x86-64. Selection used to be a static-init cpuid check per
// translation unit, which left the scalar fallback unreachable on AVX2
// hosts — i.e. never exercised in CI. This header centralizes the decision
// along two independent axes:
//
//   * the **instruction tier** (scalar / AVX2+FMA / AVX-512), overridable
//     with MOBIWLAN_SIMD_TIER=scalar|avx2|avx512 in the environment (read
//     once, at first query) or set_forced_tier() from test code. A
//     requested tier the host cannot run degrades gracefully
//     (avx512 → avx2 → scalar); CI uses the override to force-exercise
//     every dispatch path on one host. MOBIWLAN_FORCE_SCALAR=1 is kept as
//     an alias for MOBIWLAN_SIMD_TIER=scalar.
//   * the **precision tier** (fp64 / fp32) of the batched channel-synthesis
//     plane math, overridable with MOBIWLAN_PRECISION=fp32|fp64 or
//     set_forced_precision(). The default is fp64, which preserves every
//     bitwise determinism contract; the fp32 tier trades ≤~1e-5
//     scale-relative CSI agreement for 8/16-lane plane kernels (geometry
//     and RNG stay double either way — see DESIGN.md §5 "Precision
//     tiers").
//
// Kernels must consult use_avx2fma()/active_tier()/active_precision() per
// call (not cache them in a static): that is what makes the test hooks
// effective.
#pragma once

namespace mobiwlan::simd {

/// Instruction tiers, ordered: a host that runs tier T runs every tier
/// below it. kAvx512 means AVX-512F + AVX-512DQ + AVX-512VL (the subsets
/// the fp32 plane kernels use) on top of AVX2+FMA.
enum class Tier { kScalar = 0, kAvx2 = 1, kAvx512 = 2 };

/// Precision of the batched synthesis plane math (not of geometry or RNG,
/// which are always double).
enum class Precision { kFloat64 = 0, kFloat32 = 1 };

/// True if the host CPU supports AVX2 and FMA (cpuid; cached).
bool avx2fma_supported();

/// True if the host CPU supports AVX-512F/DQ/VL (cpuid; cached).
bool avx512_supported();

/// The best tier the host supports (cpuid only, ignoring overrides).
Tier best_supported_tier();

/// The tier dispatch sites must use: the forced/env-requested tier clamped
/// to host support, or the best supported tier when nothing is forced.
Tier active_tier();

/// Test hook: -1 defers to the environment (the default); 0/1/2 request
/// kScalar/kAvx2/kAvx512 (clamped to host support at query time). Takes
/// effect on the next active_tier() query.
void set_forced_tier(int tier);

/// The active precision tier: MOBIWLAN_PRECISION=fp32 selects kFloat32,
/// anything else (or unset) keeps the default kFloat64.
Precision active_precision();

/// Test hook: -1 defers to the environment (the default), 0 forces fp64,
/// 1 forces fp32. Takes effect on the next active_precision() query.
void set_forced_precision(int precision);

/// Display names ("scalar"/"avx2"/"avx512", "fp64"/"fp32") for reports.
const char* tier_name(Tier tier);
const char* precision_name(Precision precision);

/// True if scalar kernels are explicitly requested — by set_forced_tier(0)
/// / set_force_scalar(), or by the environment (MOBIWLAN_SIMD_TIER=scalar,
/// or the legacy MOBIWLAN_FORCE_SCALAR set to anything but "0" or empty).
bool force_scalar();

/// Legacy test hook, kept for existing call sites: -1 defers to the
/// environment, 1 forces scalar kernels, 0 un-forces (best supported tier,
/// ignoring the environment). Forwards onto set_forced_tier().
void set_force_scalar(int forced);

/// The question AVX2-tier dispatch sites ask: active tier >= kAvx2.
bool use_avx2fma();

/// The question AVX-512 dispatch sites ask: active tier == kAvx512.
bool use_avx512();

}  // namespace mobiwlan::simd
