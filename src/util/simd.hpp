// simd.hpp — one switch for every runtime-dispatched SIMD kernel.
//
// The channel synthesis MAC (chan/channel.cpp) and the Box-Muller noise fill
// (util/rng.cpp) each carry an AVX2+FMA variant selected at runtime so the
// build stays baseline x86-64. Selection used to be a static-init cpuid
// check per translation unit, which left the scalar fallback unreachable on
// AVX2 hosts — i.e. never exercised in CI. This header centralizes the
// decision and adds two overrides:
//
//   * MOBIWLAN_FORCE_SCALAR=1 in the environment pins every kernel to its
//     scalar variant for the whole process (read once, at first query);
//   * set_force_scalar() overrides both the environment and cpuid from test
//     code, so one binary can run both variants and compare them.
//
// Kernels must consult use_avx2fma() per call (not cache it in a static):
// that is what makes the test hook effective.
#pragma once

namespace mobiwlan::simd {

/// True if the host CPU supports AVX2 and FMA (cpuid; cached).
bool avx2fma_supported();

/// True if scalar kernels are forced — by set_force_scalar(), or else by
/// MOBIWLAN_FORCE_SCALAR being set to anything but "0" or empty.
bool force_scalar();

/// Test hook: -1 defers to the environment (the default), 0 un-forces, and
/// 1 forces scalar kernels. Takes effect on the next use_avx2fma() query.
void set_force_scalar(int forced);

/// The one question dispatch sites ask: AVX2+FMA available and not forced
/// off.
bool use_avx2fma();

}  // namespace mobiwlan::simd
