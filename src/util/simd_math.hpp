// simd_math.hpp — shared 4-lane AVX2+FMA ports of the fastmath.hpp kernels.
//
// The Box-Muller noise fill (util/rng.cpp) and the batched channel engine
// (chan/channel_batch.cpp) both burn most of their cycles in elementwise
// transcendentals. These are the vector ports of the scalar fdlibm kernels:
// same constants and evaluation order, so each lane agrees with the scalar
// path to ~1 ulp — vastly inside the 1e-12 numerical-equivalence budget the
// channel code is held to.
//
// Everything here carries the avx2,fma target attribute; callers must gate
// on simd::use_avx2fma() (a baseline-ISA caller cannot inline these, so a
// guarded call is safe on any x86-64 host).
#pragma once

#if defined(__x86_64__)

#include <immintrin.h>

#include <cassert>
#include <cfloat>
#include <numbers>

#include "util/fastmath.hpp"

namespace mobiwlan::simdmath {

// Debug-build range checks: each kernel documents an input domain
// (|x| <= kSincosWideMaxArg, |x| <= 256, positive normal, ...) but nothing
// used to enforce it at call sites — an out-of-range argument silently
// returns garbage in release. Debug builds now trap the first bad lane.
namespace detail {

#if !defined(NDEBUG)
#define MOBIWLAN_SIMD_MATH_CHECKS 1

__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) inline void assert_range_pd(
    __m256d v, double lo, double hi) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, v);
  for (double lane : lanes) assert(lane >= lo && lane <= hi);
}

__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) inline void assert_range_ps(
    __m256 v, float lo, float hi) {
  alignas(32) float lanes[8];
  _mm256_store_ps(lanes, v);
  for (float lane : lanes) assert(lane >= lo && lane <= hi);
}

__attribute__((target("avx512f,avx512dq,avx512vl"), optimize("fp-contract=off"))) inline void
assert_range_ps16(__m512 v, float lo, float hi) {
  alignas(64) float lanes[16];
  _mm512_store_ps(lanes, v);
  for (float lane : lanes) assert(lane >= lo && lane <= hi);
}

#define MOBIWLAN_ASSERT_LANES_PD(v, lo, hi) \
  ::mobiwlan::simdmath::detail::assert_range_pd((v), (lo), (hi))
#define MOBIWLAN_ASSERT_LANES_PS(v, lo, hi) \
  ::mobiwlan::simdmath::detail::assert_range_ps((v), (lo), (hi))
#define MOBIWLAN_ASSERT_LANES_PS16(v, lo, hi) \
  ::mobiwlan::simdmath::detail::assert_range_ps16((v), (lo), (hi))
#else
#define MOBIWLAN_ASSERT_LANES_PD(v, lo, hi) ((void)0)
#define MOBIWLAN_ASSERT_LANES_PS(v, lo, hi) ((void)0)
#define MOBIWLAN_ASSERT_LANES_PS16(v, lo, hi) ((void)0)
#endif

}  // namespace detail

/// log(x) for 4 finite normal positive lanes (port of fastmath::log_pos).
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) inline __m256d vlog_pos(__m256d x) {
  namespace fm = fastmath::detail;
  MOBIWLAN_ASSERT_LANES_PD(x, DBL_MIN, DBL_MAX);  // positive, normal, finite
  const __m256i bits = _mm256_castpd_si256(x);
  __m256i k64 = _mm256_sub_epi64(_mm256_srli_epi64(bits, 52),
                                 _mm256_set1_epi64x(1023));
  const __m256i hi20 = _mm256_and_si256(_mm256_srli_epi64(bits, 32),
                                        _mm256_set1_epi64x(0xfffff));
  const __m256i i20 =
      _mm256_and_si256(_mm256_add_epi64(hi20, _mm256_set1_epi64x(0x95f64)),
                       _mm256_set1_epi64x(0x100000));
  k64 = _mm256_add_epi64(k64, _mm256_srli_epi64(i20, 20));
  const __m256i mant =
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL));
  const __m256i expfield = _mm256_slli_epi64(
      _mm256_xor_si256(i20, _mm256_set1_epi64x(0x3ff00000)), 32);
  const __m256d m = _mm256_castsi256_pd(_mm256_or_si256(mant, expfield));
  // k fits in int32 (|k| <= 1075): compress the 64-bit lanes and convert.
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256d dk = _mm256_cvtepi32_pd(
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(k64, perm)));
  const __m256d f = _mm256_sub_pd(m, _mm256_set1_pd(1.0));
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
  const __m256d z = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z, z);
  const __m256d t1 = _mm256_mul_pd(
      w, _mm256_fmadd_pd(
             w,
             _mm256_fmadd_pd(w, _mm256_set1_pd(fm::kLg6),
                             _mm256_set1_pd(fm::kLg4)),
             _mm256_set1_pd(fm::kLg2)));
  const __m256d t2 = _mm256_mul_pd(
      z, _mm256_fmadd_pd(
             w,
             _mm256_fmadd_pd(
                 w,
                 _mm256_fmadd_pd(w, _mm256_set1_pd(fm::kLg7),
                                 _mm256_set1_pd(fm::kLg5)),
                 _mm256_set1_pd(fm::kLg3)),
             _mm256_set1_pd(fm::kLg1)));
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq =
      _mm256_mul_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(f, f));
  // dk*ln2_hi - ((hfsq - (s*(hfsq+r) + dk*ln2_lo)) - f)
  const __m256d inner = _mm256_fmadd_pd(dk, _mm256_set1_pd(fm::kLn2Lo),
                                        _mm256_mul_pd(s, _mm256_add_pd(hfsq, r)));
  return _mm256_fmadd_pd(
      dk, _mm256_set1_pd(fm::kLn2Hi),
      _mm256_sub_pd(f, _mm256_sub_pd(hfsq, inner)));
}

/// sin and cos of 4 lanes. Valid over the extended sincos_wide range
/// (|x| <= fastmath::kSincosWideMaxArg): k*pio2_hi stays exact, and the
/// int32 quadrant conversion holds to |k| < 2^31.
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) inline void vsincos(__m256d x,
                                                        __m256d& s_out,
                                                        __m256d& c_out) {
  namespace fm = fastmath::detail;
  MOBIWLAN_ASSERT_LANES_PD(x, -fastmath::kSincosWideMaxArg,
                           fastmath::kSincosWideMaxArg);
  const __m256d kd = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(fm::kTwoOverPi)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(kd, _mm256_set1_pd(fm::kPio2Hi), x);
  r = _mm256_fnmadd_pd(kd, _mm256_set1_pd(fm::kPio2Lo), r);
  const __m256d z = _mm256_mul_pd(r, r);
  __m256d ps = _mm256_fmadd_pd(z, _mm256_set1_pd(fm::kS6), _mm256_set1_pd(fm::kS5));
  ps = _mm256_fmadd_pd(z, ps, _mm256_set1_pd(fm::kS4));
  ps = _mm256_fmadd_pd(z, ps, _mm256_set1_pd(fm::kS3));
  ps = _mm256_fmadd_pd(z, ps, _mm256_set1_pd(fm::kS2));
  ps = _mm256_fmadd_pd(z, ps, _mm256_set1_pd(fm::kS1));
  const __m256d psin = _mm256_fmadd_pd(_mm256_mul_pd(z, r), ps, r);
  __m256d pc = _mm256_fmadd_pd(z, _mm256_set1_pd(fm::kC6), _mm256_set1_pd(fm::kC5));
  pc = _mm256_fmadd_pd(z, pc, _mm256_set1_pd(fm::kC4));
  pc = _mm256_fmadd_pd(z, pc, _mm256_set1_pd(fm::kC3));
  pc = _mm256_fmadd_pd(z, pc, _mm256_set1_pd(fm::kC2));
  pc = _mm256_fmadd_pd(z, pc, _mm256_set1_pd(fm::kC1));
  const __m256d hz = _mm256_mul_pd(_mm256_set1_pd(0.5), z);
  const __m256d w = _mm256_sub_pd(_mm256_set1_pd(1.0), hz);
  const __m256d pcos = _mm256_add_pd(
      w, _mm256_add_pd(
             _mm256_sub_pd(_mm256_sub_pd(_mm256_set1_pd(1.0), w), hz),
             _mm256_mul_pd(z, _mm256_mul_pd(z, pc))));
  // Quadrant: sin = {s, c, -s, -c}[n & 3], cos = {c, -s, -c, s}[n & 3].
  const __m256i n = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(kd));
  const __m256d odd = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
      _mm256_and_si256(n, _mm256_set1_epi64x(1)), _mm256_set1_epi64x(1)));
  const __m256d s_base = _mm256_blendv_pd(psin, pcos, odd);
  const __m256d c_base = _mm256_blendv_pd(pcos, psin, odd);
  const __m256d s_sign = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_and_si256(n, _mm256_set1_epi64x(2)), 62));
  const __m256d c_sign = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_and_si256(_mm256_add_epi64(n, _mm256_set1_epi64x(1)),
                       _mm256_set1_epi64x(2)),
      62));
  s_out = _mm256_xor_pd(s_base, s_sign);
  c_out = _mm256_xor_pd(c_base, c_sign);
}

/// 2^x for 4 lanes with |x| <= 256 (all the dB -> linear conversions the
/// channel needs live in [-40, 0]). Reduction x = k + f with k integral and
/// |f| <= 1/2 is exact; 2^f = exp(f ln2) by a degree-12 Taylor Horner chain
/// (truncation < 2e-16 at |f ln2| <= 0.347); the 2^k scale is an exact
/// exponent-field multiply. Agrees with std::exp2 to ~2 ulp.
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) inline __m256d vexp2(__m256d x) {
  MOBIWLAN_ASSERT_LANES_PD(x, -256.0, 256.0);
  const __m256d kd = _mm256_round_pd(
      x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d t =
      _mm256_mul_pd(_mm256_sub_pd(x, kd), _mm256_set1_pd(std::numbers::ln2));
  __m256d p = _mm256_set1_pd(1.0 / 479001600.0);  // 1/12!
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 39916800.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 3628800.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 362880.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 40320.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 5040.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 720.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 120.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 24.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 6.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(0.5));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0));
  // scale by 2^k via the exponent field; k is integral and |k| <= 256.
  const __m256i k64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(kd));
  const __m256d scale = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52));
  return _mm256_mul_pd(p, scale);
}

// ---------------------------------------------------------------------------
// fp32 kernels — 8-lane AVX2 and 16-lane AVX-512 ports of the scalar
// *_f32 kernels in fastmath.hpp. Same constants and evaluation order, so
// every lane agrees with the scalar fp32 path to ~1 ulp_f32 (the only
// divergence is FMA contraction the scalar path also uses via std::fmaf).
// AVX-512 kernels carry the f/dq/vl target set that simd::avx512_supported()
// gates on.
// ---------------------------------------------------------------------------

/// sin and cos of 8 float lanes, |x| <= fastmath::kSincosF32MaxArg,
/// ~2 ulp_f32 (see sincos_f32).
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) inline void vsincos_f8(__m256 x,
                                                           __m256& s_out,
                                                           __m256& c_out) {
  namespace fm = fastmath::detail;
  MOBIWLAN_ASSERT_LANES_PS(x, -fastmath::kSincosF32MaxArg,
                           fastmath::kSincosF32MaxArg);
  const __m256 kd = _mm256_round_ps(
      _mm256_mul_ps(x, _mm256_set1_ps(fm::kTwoOverPiF)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256 r = _mm256_fnmadd_ps(kd, _mm256_set1_ps(fm::kPio2AF), x);
  r = _mm256_fnmadd_ps(kd, _mm256_set1_ps(fm::kPio2BF), r);
  r = _mm256_fnmadd_ps(kd, _mm256_set1_ps(fm::kPio2CF), r);
  const __m256 z = _mm256_mul_ps(r, r);
  __m256 ps =
      _mm256_fmadd_ps(z, _mm256_set1_ps(fm::kSF3), _mm256_set1_ps(fm::kSF2));
  ps = _mm256_fmadd_ps(z, ps, _mm256_set1_ps(fm::kSF1));
  const __m256 psin = _mm256_fmadd_ps(_mm256_mul_ps(z, r), ps, r);
  __m256 pc =
      _mm256_fmadd_ps(z, _mm256_set1_ps(fm::kCF3), _mm256_set1_ps(fm::kCF2));
  pc = _mm256_fmadd_ps(z, pc, _mm256_set1_ps(fm::kCF1));
  const __m256 w = _mm256_fnmadd_ps(_mm256_set1_ps(0.5f), z,
                                    _mm256_set1_ps(1.0f));
  const __m256 pcos = _mm256_fmadd_ps(_mm256_mul_ps(z, z), pc, w);
  // Quadrant: sin = {s, c, -s, -c}[n & 3], cos = {c, -s, -c, s}[n & 3].
  const __m256i n = _mm256_cvtps_epi32(kd);
  const __m256 odd = _mm256_castsi256_ps(_mm256_cmpeq_epi32(
      _mm256_and_si256(n, _mm256_set1_epi32(1)), _mm256_set1_epi32(1)));
  const __m256 s_base = _mm256_blendv_ps(psin, pcos, odd);
  const __m256 c_base = _mm256_blendv_ps(pcos, psin, odd);
  const __m256 s_sign = _mm256_castsi256_ps(
      _mm256_slli_epi32(_mm256_and_si256(n, _mm256_set1_epi32(2)), 30));
  const __m256 c_sign = _mm256_castsi256_ps(_mm256_slli_epi32(
      _mm256_and_si256(_mm256_add_epi32(n, _mm256_set1_epi32(1)),
                       _mm256_set1_epi32(2)),
      30));
  s_out = _mm256_xor_ps(s_base, s_sign);
  c_out = _mm256_xor_ps(c_base, c_sign);
}

/// log(x) for 8 finite normal positive float lanes, ~1 ulp_f32
/// (see log_pos_f32).
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) inline __m256 vlog_pos_f8(__m256 x) {
  namespace fm = fastmath::detail;
  MOBIWLAN_ASSERT_LANES_PS(x, FLT_MIN, FLT_MAX);  // positive, normal, finite
  const __m256i bits = _mm256_castps_si256(x);
  __m256i k = _mm256_sub_epi32(_mm256_srli_epi32(bits, 23),
                               _mm256_set1_epi32(127));
  const __m256i mant =
      _mm256_and_si256(bits, _mm256_set1_epi32(0x007fffff));
  const __m256i i = _mm256_and_si256(
      _mm256_add_epi32(mant, _mm256_set1_epi32(0x4afb20)),
      _mm256_set1_epi32(0x800000));
  k = _mm256_add_epi32(k, _mm256_srli_epi32(i, 23));
  const __m256 m = _mm256_castsi256_ps(_mm256_or_si256(
      mant, _mm256_xor_si256(i, _mm256_set1_epi32(0x3f800000))));
  const __m256 dk = _mm256_cvtepi32_ps(k);
  const __m256 f = _mm256_sub_ps(m, _mm256_set1_ps(1.0f));
  const __m256 s =
      _mm256_div_ps(f, _mm256_add_ps(_mm256_set1_ps(2.0f), f));
  const __m256 z = _mm256_mul_ps(s, s);
  const __m256 w = _mm256_mul_ps(z, z);
  const __m256 t1 = _mm256_mul_ps(
      w, _mm256_fmadd_ps(w, _mm256_set1_ps(fm::kLgF4),
                         _mm256_set1_ps(fm::kLgF2)));
  const __m256 t2 = _mm256_mul_ps(
      z, _mm256_fmadd_ps(w, _mm256_set1_ps(fm::kLgF3),
                         _mm256_set1_ps(fm::kLgF1)));
  const __m256 r = _mm256_add_ps(t2, t1);
  const __m256 hfsq =
      _mm256_mul_ps(_mm256_set1_ps(0.5f), _mm256_mul_ps(f, f));
  // dk*ln2_hi - ((hfsq - (s*(hfsq+r) + dk*ln2_lo)) - f)
  const __m256 inner =
      _mm256_fmadd_ps(dk, _mm256_set1_ps(fm::kLn2LoF),
                      _mm256_mul_ps(s, _mm256_add_ps(hfsq, r)));
  return _mm256_fmadd_ps(dk, _mm256_set1_ps(fm::kLn2HiF),
                         _mm256_sub_ps(f, _mm256_sub_ps(hfsq, inner)));
}

/// 2^x for 8 float lanes, |x| <= fastmath::kExp2F32MaxArg, ~2 ulp_f32
/// (see exp2_f32).
__attribute__((target("avx2,fma"), optimize("fp-contract=off"))) inline __m256 vexp2_f8(__m256 x) {
  MOBIWLAN_ASSERT_LANES_PS(x, -fastmath::kExp2F32MaxArg,
                           fastmath::kExp2F32MaxArg);
  const __m256 kd = _mm256_round_ps(
      x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256 t = _mm256_mul_ps(_mm256_sub_ps(x, kd),
                                 _mm256_set1_ps(0.69314718056f));
  __m256 p = _mm256_set1_ps(1.0f / 5040.0f);
  p = _mm256_fmadd_ps(t, p, _mm256_set1_ps(1.0f / 720.0f));
  p = _mm256_fmadd_ps(t, p, _mm256_set1_ps(1.0f / 120.0f));
  p = _mm256_fmadd_ps(t, p, _mm256_set1_ps(1.0f / 24.0f));
  p = _mm256_fmadd_ps(t, p, _mm256_set1_ps(1.0f / 6.0f));
  p = _mm256_fmadd_ps(t, p, _mm256_set1_ps(0.5f));
  p = _mm256_fmadd_ps(t, p, _mm256_set1_ps(1.0f));
  p = _mm256_fmadd_ps(t, p, _mm256_set1_ps(1.0f));
  const __m256i k = _mm256_cvtps_epi32(kd);
  const __m256 scale = _mm256_castsi256_ps(_mm256_slli_epi32(
      _mm256_add_epi32(k, _mm256_set1_epi32(127)), 23));
  return _mm256_mul_ps(p, scale);
}

/// sin and cos of 16 float lanes (AVX-512 port of vsincos_f8).
__attribute__((target("avx512f,avx512dq,avx512vl"), optimize("fp-contract=off"))) inline void vsincos_f16(
    __m512 x, __m512& s_out, __m512& c_out) {
  namespace fm = fastmath::detail;
  MOBIWLAN_ASSERT_LANES_PS16(x, -fastmath::kSincosF32MaxArg,
                             fastmath::kSincosF32MaxArg);
  const __m512 kd = _mm512_roundscale_ps(
      _mm512_mul_ps(x, _mm512_set1_ps(fm::kTwoOverPiF)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m512 r = _mm512_fnmadd_ps(kd, _mm512_set1_ps(fm::kPio2AF), x);
  r = _mm512_fnmadd_ps(kd, _mm512_set1_ps(fm::kPio2BF), r);
  r = _mm512_fnmadd_ps(kd, _mm512_set1_ps(fm::kPio2CF), r);
  const __m512 z = _mm512_mul_ps(r, r);
  __m512 ps =
      _mm512_fmadd_ps(z, _mm512_set1_ps(fm::kSF3), _mm512_set1_ps(fm::kSF2));
  ps = _mm512_fmadd_ps(z, ps, _mm512_set1_ps(fm::kSF1));
  const __m512 psin = _mm512_fmadd_ps(_mm512_mul_ps(z, r), ps, r);
  __m512 pc =
      _mm512_fmadd_ps(z, _mm512_set1_ps(fm::kCF3), _mm512_set1_ps(fm::kCF2));
  pc = _mm512_fmadd_ps(z, pc, _mm512_set1_ps(fm::kCF1));
  const __m512 w = _mm512_fnmadd_ps(_mm512_set1_ps(0.5f), z,
                                    _mm512_set1_ps(1.0f));
  const __m512 pcos = _mm512_fmadd_ps(_mm512_mul_ps(z, z), pc, w);
  const __m512i n = _mm512_cvtps_epi32(kd);
  const __mmask16 odd =
      _mm512_test_epi32_mask(n, _mm512_set1_epi32(1));
  const __m512 s_base = _mm512_mask_blend_ps(odd, psin, pcos);
  const __m512 c_base = _mm512_mask_blend_ps(odd, pcos, psin);
  const __m512 s_sign = _mm512_castsi512_ps(
      _mm512_slli_epi32(_mm512_and_epi32(n, _mm512_set1_epi32(2)), 30));
  const __m512 c_sign = _mm512_castsi512_ps(_mm512_slli_epi32(
      _mm512_and_epi32(_mm512_add_epi32(n, _mm512_set1_epi32(1)),
                       _mm512_set1_epi32(2)),
      30));
  s_out = _mm512_xor_ps(s_base, s_sign);
  c_out = _mm512_xor_ps(c_base, c_sign);
}

/// log(x) for 16 finite normal positive float lanes (AVX-512 port of
/// vlog_pos_f8).
__attribute__((target("avx512f,avx512dq,avx512vl"), optimize("fp-contract=off"))) inline __m512
vlog_pos_f16(__m512 x) {
  namespace fm = fastmath::detail;
  MOBIWLAN_ASSERT_LANES_PS16(x, FLT_MIN, FLT_MAX);
  const __m512i bits = _mm512_castps_si512(x);
  __m512i k = _mm512_sub_epi32(_mm512_srli_epi32(bits, 23),
                               _mm512_set1_epi32(127));
  const __m512i mant =
      _mm512_and_epi32(bits, _mm512_set1_epi32(0x007fffff));
  const __m512i i = _mm512_and_epi32(
      _mm512_add_epi32(mant, _mm512_set1_epi32(0x4afb20)),
      _mm512_set1_epi32(0x800000));
  k = _mm512_add_epi32(k, _mm512_srli_epi32(i, 23));
  const __m512 m = _mm512_castsi512_ps(_mm512_or_epi32(
      mant, _mm512_xor_epi32(i, _mm512_set1_epi32(0x3f800000))));
  const __m512 dk = _mm512_cvtepi32_ps(k);
  const __m512 f = _mm512_sub_ps(m, _mm512_set1_ps(1.0f));
  const __m512 s =
      _mm512_div_ps(f, _mm512_add_ps(_mm512_set1_ps(2.0f), f));
  const __m512 z = _mm512_mul_ps(s, s);
  const __m512 w = _mm512_mul_ps(z, z);
  const __m512 t1 = _mm512_mul_ps(
      w, _mm512_fmadd_ps(w, _mm512_set1_ps(fm::kLgF4),
                         _mm512_set1_ps(fm::kLgF2)));
  const __m512 t2 = _mm512_mul_ps(
      z, _mm512_fmadd_ps(w, _mm512_set1_ps(fm::kLgF3),
                         _mm512_set1_ps(fm::kLgF1)));
  const __m512 r = _mm512_add_ps(t2, t1);
  const __m512 hfsq =
      _mm512_mul_ps(_mm512_set1_ps(0.5f), _mm512_mul_ps(f, f));
  const __m512 inner =
      _mm512_fmadd_ps(dk, _mm512_set1_ps(fm::kLn2LoF),
                      _mm512_mul_ps(s, _mm512_add_ps(hfsq, r)));
  return _mm512_fmadd_ps(dk, _mm512_set1_ps(fm::kLn2HiF),
                         _mm512_sub_ps(f, _mm512_sub_ps(hfsq, inner)));
}

/// 2^x for 16 float lanes (AVX-512 port of vexp2_f8).
__attribute__((target("avx512f,avx512dq,avx512vl"), optimize("fp-contract=off"))) inline __m512 vexp2_f16(
    __m512 x) {
  MOBIWLAN_ASSERT_LANES_PS16(x, -fastmath::kExp2F32MaxArg,
                             fastmath::kExp2F32MaxArg);
  const __m512 kd = _mm512_roundscale_ps(
      x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m512 t = _mm512_mul_ps(_mm512_sub_ps(x, kd),
                                 _mm512_set1_ps(0.69314718056f));
  __m512 p = _mm512_set1_ps(1.0f / 5040.0f);
  p = _mm512_fmadd_ps(t, p, _mm512_set1_ps(1.0f / 720.0f));
  p = _mm512_fmadd_ps(t, p, _mm512_set1_ps(1.0f / 120.0f));
  p = _mm512_fmadd_ps(t, p, _mm512_set1_ps(1.0f / 24.0f));
  p = _mm512_fmadd_ps(t, p, _mm512_set1_ps(1.0f / 6.0f));
  p = _mm512_fmadd_ps(t, p, _mm512_set1_ps(0.5f));
  p = _mm512_fmadd_ps(t, p, _mm512_set1_ps(1.0f));
  p = _mm512_fmadd_ps(t, p, _mm512_set1_ps(1.0f));
  const __m512i k = _mm512_cvtps_epi32(kd);
  const __m512 scale = _mm512_castsi512_ps(_mm512_slli_epi32(
      _mm512_add_epi32(k, _mm512_set1_epi32(127)), 23));
  return _mm512_mul_ps(p, scale);
}

}  // namespace mobiwlan::simdmath

#endif  // __x86_64__
