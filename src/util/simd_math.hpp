// simd_math.hpp — shared 4-lane AVX2+FMA ports of the fastmath.hpp kernels.
//
// The Box-Muller noise fill (util/rng.cpp) and the batched channel engine
// (chan/channel_batch.cpp) both burn most of their cycles in elementwise
// transcendentals. These are the vector ports of the scalar fdlibm kernels:
// same constants and evaluation order, so each lane agrees with the scalar
// path to ~1 ulp — vastly inside the 1e-12 numerical-equivalence budget the
// channel code is held to.
//
// Everything here carries the avx2,fma target attribute; callers must gate
// on simd::use_avx2fma() (a baseline-ISA caller cannot inline these, so a
// guarded call is safe on any x86-64 host).
#pragma once

#if defined(__x86_64__)

#include <immintrin.h>

#include <numbers>

#include "util/fastmath.hpp"

namespace mobiwlan::simdmath {

/// log(x) for 4 finite normal positive lanes (port of fastmath::log_pos).
__attribute__((target("avx2,fma"))) inline __m256d vlog_pos(__m256d x) {
  namespace fm = fastmath::detail;
  const __m256i bits = _mm256_castpd_si256(x);
  __m256i k64 = _mm256_sub_epi64(_mm256_srli_epi64(bits, 52),
                                 _mm256_set1_epi64x(1023));
  const __m256i hi20 = _mm256_and_si256(_mm256_srli_epi64(bits, 32),
                                        _mm256_set1_epi64x(0xfffff));
  const __m256i i20 =
      _mm256_and_si256(_mm256_add_epi64(hi20, _mm256_set1_epi64x(0x95f64)),
                       _mm256_set1_epi64x(0x100000));
  k64 = _mm256_add_epi64(k64, _mm256_srli_epi64(i20, 20));
  const __m256i mant =
      _mm256_and_si256(bits, _mm256_set1_epi64x(0x000fffffffffffffLL));
  const __m256i expfield = _mm256_slli_epi64(
      _mm256_xor_si256(i20, _mm256_set1_epi64x(0x3ff00000)), 32);
  const __m256d m = _mm256_castsi256_pd(_mm256_or_si256(mant, expfield));
  // k fits in int32 (|k| <= 1075): compress the 64-bit lanes and convert.
  const __m256i perm = _mm256_setr_epi32(0, 2, 4, 6, 0, 0, 0, 0);
  const __m256d dk = _mm256_cvtepi32_pd(
      _mm256_castsi256_si128(_mm256_permutevar8x32_epi32(k64, perm)));
  const __m256d f = _mm256_sub_pd(m, _mm256_set1_pd(1.0));
  const __m256d s = _mm256_div_pd(f, _mm256_add_pd(_mm256_set1_pd(2.0), f));
  const __m256d z = _mm256_mul_pd(s, s);
  const __m256d w = _mm256_mul_pd(z, z);
  const __m256d t1 = _mm256_mul_pd(
      w, _mm256_fmadd_pd(
             w,
             _mm256_fmadd_pd(w, _mm256_set1_pd(fm::kLg6),
                             _mm256_set1_pd(fm::kLg4)),
             _mm256_set1_pd(fm::kLg2)));
  const __m256d t2 = _mm256_mul_pd(
      z, _mm256_fmadd_pd(
             w,
             _mm256_fmadd_pd(
                 w,
                 _mm256_fmadd_pd(w, _mm256_set1_pd(fm::kLg7),
                                 _mm256_set1_pd(fm::kLg5)),
                 _mm256_set1_pd(fm::kLg3)),
             _mm256_set1_pd(fm::kLg1)));
  const __m256d r = _mm256_add_pd(t2, t1);
  const __m256d hfsq =
      _mm256_mul_pd(_mm256_set1_pd(0.5), _mm256_mul_pd(f, f));
  // dk*ln2_hi - ((hfsq - (s*(hfsq+r) + dk*ln2_lo)) - f)
  const __m256d inner = _mm256_fmadd_pd(dk, _mm256_set1_pd(fm::kLn2Lo),
                                        _mm256_mul_pd(s, _mm256_add_pd(hfsq, r)));
  return _mm256_fmadd_pd(
      dk, _mm256_set1_pd(fm::kLn2Hi),
      _mm256_sub_pd(f, _mm256_sub_pd(hfsq, inner)));
}

/// sin and cos of 4 lanes. Valid over the extended sincos_wide range
/// (|x| <= fastmath::kSincosWideMaxArg): k*pio2_hi stays exact, and the
/// int32 quadrant conversion holds to |k| < 2^31.
__attribute__((target("avx2,fma"))) inline void vsincos(__m256d x,
                                                        __m256d& s_out,
                                                        __m256d& c_out) {
  namespace fm = fastmath::detail;
  const __m256d kd = _mm256_round_pd(
      _mm256_mul_pd(x, _mm256_set1_pd(fm::kTwoOverPi)),
      _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  __m256d r = _mm256_fnmadd_pd(kd, _mm256_set1_pd(fm::kPio2Hi), x);
  r = _mm256_fnmadd_pd(kd, _mm256_set1_pd(fm::kPio2Lo), r);
  const __m256d z = _mm256_mul_pd(r, r);
  __m256d ps = _mm256_fmadd_pd(z, _mm256_set1_pd(fm::kS6), _mm256_set1_pd(fm::kS5));
  ps = _mm256_fmadd_pd(z, ps, _mm256_set1_pd(fm::kS4));
  ps = _mm256_fmadd_pd(z, ps, _mm256_set1_pd(fm::kS3));
  ps = _mm256_fmadd_pd(z, ps, _mm256_set1_pd(fm::kS2));
  ps = _mm256_fmadd_pd(z, ps, _mm256_set1_pd(fm::kS1));
  const __m256d psin = _mm256_fmadd_pd(_mm256_mul_pd(z, r), ps, r);
  __m256d pc = _mm256_fmadd_pd(z, _mm256_set1_pd(fm::kC6), _mm256_set1_pd(fm::kC5));
  pc = _mm256_fmadd_pd(z, pc, _mm256_set1_pd(fm::kC4));
  pc = _mm256_fmadd_pd(z, pc, _mm256_set1_pd(fm::kC3));
  pc = _mm256_fmadd_pd(z, pc, _mm256_set1_pd(fm::kC2));
  pc = _mm256_fmadd_pd(z, pc, _mm256_set1_pd(fm::kC1));
  const __m256d hz = _mm256_mul_pd(_mm256_set1_pd(0.5), z);
  const __m256d w = _mm256_sub_pd(_mm256_set1_pd(1.0), hz);
  const __m256d pcos = _mm256_add_pd(
      w, _mm256_add_pd(
             _mm256_sub_pd(_mm256_sub_pd(_mm256_set1_pd(1.0), w), hz),
             _mm256_mul_pd(z, _mm256_mul_pd(z, pc))));
  // Quadrant: sin = {s, c, -s, -c}[n & 3], cos = {c, -s, -c, s}[n & 3].
  const __m256i n = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(kd));
  const __m256d odd = _mm256_castsi256_pd(_mm256_cmpeq_epi64(
      _mm256_and_si256(n, _mm256_set1_epi64x(1)), _mm256_set1_epi64x(1)));
  const __m256d s_base = _mm256_blendv_pd(psin, pcos, odd);
  const __m256d c_base = _mm256_blendv_pd(pcos, psin, odd);
  const __m256d s_sign = _mm256_castsi256_pd(
      _mm256_slli_epi64(_mm256_and_si256(n, _mm256_set1_epi64x(2)), 62));
  const __m256d c_sign = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_and_si256(_mm256_add_epi64(n, _mm256_set1_epi64x(1)),
                       _mm256_set1_epi64x(2)),
      62));
  s_out = _mm256_xor_pd(s_base, s_sign);
  c_out = _mm256_xor_pd(c_base, c_sign);
}

/// 2^x for 4 lanes with |x| <= 256 (all the dB -> linear conversions the
/// channel needs live in [-40, 0]). Reduction x = k + f with k integral and
/// |f| <= 1/2 is exact; 2^f = exp(f ln2) by a degree-12 Taylor Horner chain
/// (truncation < 2e-16 at |f ln2| <= 0.347); the 2^k scale is an exact
/// exponent-field multiply. Agrees with std::exp2 to ~2 ulp.
__attribute__((target("avx2,fma"))) inline __m256d vexp2(__m256d x) {
  const __m256d kd = _mm256_round_pd(
      x, _MM_FROUND_TO_NEAREST_INT | _MM_FROUND_NO_EXC);
  const __m256d t =
      _mm256_mul_pd(_mm256_sub_pd(x, kd), _mm256_set1_pd(std::numbers::ln2));
  __m256d p = _mm256_set1_pd(1.0 / 479001600.0);  // 1/12!
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 39916800.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 3628800.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 362880.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 40320.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 5040.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 720.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 120.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 24.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0 / 6.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(0.5));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0));
  p = _mm256_fmadd_pd(t, p, _mm256_set1_pd(1.0));
  // scale by 2^k via the exponent field; k is integral and |k| <= 256.
  const __m256i k64 = _mm256_cvtepi32_epi64(_mm256_cvtpd_epi32(kd));
  const __m256d scale = _mm256_castsi256_pd(_mm256_slli_epi64(
      _mm256_add_epi64(k64, _mm256_set1_epi64x(1023)), 52));
  return _mm256_mul_pd(p, scale);
}

}  // namespace mobiwlan::simdmath

#endif  // __x86_64__
