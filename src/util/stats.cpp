#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace mobiwlan {

void OnlineStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double OnlineStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double OnlineStats::stddev() const { return std::sqrt(variance()); }

SampleSet::SampleSet(std::vector<double> samples)
    : samples_(std::move(samples)), sorted_(false) {}

void SampleSet::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
}

void SampleSet::add_all(const std::vector<double>& xs) {
  samples_.insert(samples_.end(), xs.begin(), xs.end());
  sorted_ = false;
}

double SampleSet::mean() const { return mean_of(samples_); }

double SampleSet::stddev() const { return stddev_of(samples_); }

double SampleSet::min() const {
  if (samples_.empty()) return 0.0;
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleSet::max() const {
  if (samples_.empty()) return 0.0;
  return *std::max_element(samples_.begin(), samples_.end());
}

void SampleSet::ensure_sorted() const {
  if (!sorted_) {
    auto& mutable_samples = const_cast<std::vector<double>&>(samples_);
    std::sort(mutable_samples.begin(), mutable_samples.end());
    sorted_ = true;
  }
}

double SampleSet::quantile(double q) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

double SampleSet::cdf_at(double x) const {
  if (samples_.empty()) return 0.0;
  ensure_sorted();
  const auto it = std::upper_bound(samples_.begin(), samples_.end(), x);
  return static_cast<double>(it - samples_.begin()) /
         static_cast<double>(samples_.size());
}

std::vector<std::pair<double, double>> SampleSet::cdf_points(std::size_t points) const {
  std::vector<std::pair<double, double>> out;
  if (samples_.empty() || points == 0) return out;
  out.reserve(points);
  for (std::size_t i = 0; i < points; ++i) {
    const double q = static_cast<double>(i) / static_cast<double>(points - 1);
    out.emplace_back(quantile(q), q);
  }
  return out;
}

double stddev_of(const std::vector<double>& xs) {
  OnlineStats s;
  for (double x : xs) s.add(x);
  return s.stddev();
}

double median_of(std::vector<double> xs) {
  if (xs.empty()) return 0.0;
  const auto mid = xs.size() / 2;
  std::nth_element(xs.begin(), xs.begin() + mid, xs.end());
  double m = xs[mid];
  if (xs.size() % 2 == 0) {
    const auto lower = std::max_element(xs.begin(), xs.begin() + mid);
    m = (m + *lower) / 2.0;
  }
  return m;
}

double mean_of(const std::vector<double>& xs) {
  if (xs.empty()) return 0.0;
  double sum = 0.0;
  for (double x : xs) sum += x;
  return sum / static_cast<double>(xs.size());
}

}  // namespace mobiwlan
