// stats.hpp — online statistics, sample collections, and CDFs.
//
// The paper's evaluation reports medians, CDFs, and per-window standard
// deviations; these helpers provide those primitives for tests and benches.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace mobiwlan {

/// Welford-style online mean/variance accumulator.
class OnlineStats {
 public:
  void add(double x);

  std::size_t count() const { return n_; }
  double mean() const { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ > 0 ? min_ : 0.0; }
  double max() const { return n_ > 0 ? max_ : 0.0; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// A bag of samples supporting quantiles and CDF extraction.
///
/// Used by every bench binary to report the distributions the paper plots.
class SampleSet {
 public:
  SampleSet() = default;
  explicit SampleSet(std::vector<double> samples);

  void add(double x);
  void add_all(const std::vector<double>& xs);

  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }

  double mean() const;
  double stddev() const;
  double min() const;
  double max() const;

  /// Quantile by linear interpolation between order statistics, q in [0,1].
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

  /// CDF value at x: fraction of samples <= x.
  double cdf_at(double x) const;

  /// Evenly-spaced (in probability) CDF points for plotting/printing.
  /// Returns `points` pairs of (value, cumulative probability).
  std::vector<std::pair<double, double>> cdf_points(std::size_t points = 20) const;

  const std::vector<double>& samples() const { return samples_; }

 private:
  void ensure_sorted() const;

  std::vector<double> samples_;
  mutable bool sorted_ = true;
};

/// Standard deviation of a window of values (n-1 denominator; 0 if n < 2).
double stddev_of(const std::vector<double>& xs);

/// Median of a vector (copies; does not mutate the input). 0 for empty input.
double median_of(std::vector<double> xs);

/// Arithmetic mean; 0 for empty input.
double mean_of(const std::vector<double>& xs);

}  // namespace mobiwlan
