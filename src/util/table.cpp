#include "util/table.hpp"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/stats.hpp"

namespace mobiwlan {

TablePrinter::TablePrinter(std::string title) : title_(std::move(title)) {}

void TablePrinter::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void TablePrinter::add_row(std::vector<std::string> row) {
  rows_.push_back(std::move(row));
}

std::string TablePrinter::render() const {
  // Compute column widths over header + rows.
  std::vector<std::size_t> widths;
  auto absorb = [&widths](const std::vector<std::string>& row) {
    if (row.size() > widths.size()) widths.resize(row.size(), 0);
    for (std::size_t i = 0; i < row.size(); ++i)
      widths[i] = std::max(widths[i], row[i].size());
  };
  absorb(header_);
  for (const auto& row : rows_) absorb(row);

  std::ostringstream out;
  out << "== " << title_ << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < widths.size(); ++i) {
      const std::string& cell = i < row.size() ? row[i] : std::string{};
      out << cell << std::string(widths[i] - cell.size() + 2, ' ');
    }
    out << "\n";
  };
  if (!header_.empty()) {
    emit(header_);
    std::size_t total = 0;
    for (auto w : widths) total += w + 2;
    out << std::string(total, '-') << "\n";
  }
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(render().c_str(), stdout); }

std::string TablePrinter::num(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::pct(double fraction) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.1f%%", 100.0 * fraction);
  return buf;
}

std::string render_cdf_table(
    const std::string& title,
    const std::vector<std::pair<std::string, const SampleSet*>>& series) {
  TablePrinter t(title);
  t.set_header({"series", "n", "p10", "p25", "p50", "p75", "p90", "mean"});
  for (const auto& [name, s] : series) {
    t.add_row({name, std::to_string(s->size()), TablePrinter::num(s->quantile(0.10)),
               TablePrinter::num(s->quantile(0.25)), TablePrinter::num(s->quantile(0.50)),
               TablePrinter::num(s->quantile(0.75)), TablePrinter::num(s->quantile(0.90)),
               TablePrinter::num(s->mean())});
  }
  return t.render();
}

std::string render_ascii_cdf(const std::string& title, const SampleSet& samples,
                             int width, int height) {
  std::ostringstream out;
  out << "-- " << title << " (CDF) --\n";
  if (samples.empty()) {
    out << "(no samples)\n";
    return out.str();
  }
  const double lo = samples.min();
  const double hi = samples.max();
  const double span = hi > lo ? hi - lo : 1.0;
  std::vector<std::string> grid(static_cast<std::size_t>(height),
                                std::string(static_cast<std::size_t>(width), ' '));
  for (int x = 0; x < width; ++x) {
    const double value = lo + span * x / std::max(1, width - 1);
    const double p = samples.cdf_at(value);
    int y = static_cast<int>(p * (height - 1) + 0.5);
    y = std::clamp(y, 0, height - 1);
    grid[static_cast<std::size_t>(height - 1 - y)][static_cast<std::size_t>(x)] = '*';
  }
  for (int y = 0; y < height; ++y) {
    const double p = 1.0 - static_cast<double>(y) / (height - 1);
    char label[16];
    std::snprintf(label, sizeof(label), "%4.2f |", p);
    out << label << grid[static_cast<std::size_t>(y)] << "\n";
  }
  char axis[128];
  std::snprintf(axis, sizeof(axis), "      %-10.3g%*s%10.3g\n", lo,
                std::max(0, width - 20), "", hi);
  out << axis;
  return out.str();
}

}  // namespace mobiwlan
