// table.hpp — plain-text tables and CDF sketches for bench output.
//
// Every bench binary regenerates one of the paper's tables or figures and
// prints it in a form comparable side-by-side with the paper; these helpers
// keep that output consistent across binaries.
#pragma once

#include <string>
#include <utility>
#include <vector>

namespace mobiwlan {

class SampleSet;

/// Column-aligned ASCII table with a title and header row.
class TablePrinter {
 public:
  explicit TablePrinter(std::string title);

  void set_header(std::vector<std::string> header);
  void add_row(std::vector<std::string> row);

  /// Render to a string (also usable in tests).
  std::string render() const;
  /// Render to stdout.
  void print() const;

  /// Format a double with the given precision.
  static std::string num(double v, int precision = 2);
  /// Format as a percentage with one decimal ("93.4%").
  static std::string pct(double fraction);

 private:
  std::string title_;
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Renders several named sample distributions as a quantile table
/// (p10/p25/p50/p75/p90) — the textual stand-in for the paper's CDF plots.
std::string render_cdf_table(const std::string& title,
                             const std::vector<std::pair<std::string, const SampleSet*>>& series);

/// Renders one distribution as an ASCII CDF curve (value axis horizontal).
std::string render_ascii_cdf(const std::string& title, const SampleSet& samples,
                             int width = 60, int height = 10);

}  // namespace mobiwlan
