// units.hpp — physical constants and dB/linear conversions used across mobiwlan.
#pragma once

#include <cmath>

namespace mobiwlan {

/// Speed of light in vacuum (m/s). Indoor propagation is close enough to c
/// that ToF-based ranging uses the vacuum value, as the Atheros firmware does.
inline constexpr double kSpeedOfLight = 299'792'458.0;

/// Thermal noise power spectral density at 290 K (dBm/Hz).
inline constexpr double kThermalNoiseDbmPerHz = -174.0;

/// 802.11 SIFS on 5 GHz OFDM PHYs (seconds).
inline constexpr double kSifs = 16e-6;

/// 802.11 slot time on 5 GHz OFDM PHYs (seconds).
inline constexpr double kSlotTime = 9e-6;

/// DIFS = SIFS + 2 * slot (seconds).
inline constexpr double kDifs = kSifs + 2.0 * kSlotTime;

/// Convert a power ratio in dB to linear scale.
inline double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

/// Convert a linear power ratio to dB. Clamps at -300 dB for zero/negative input.
inline double linear_to_db(double linear) {
  if (linear <= 0.0) return -300.0;
  return 10.0 * std::log10(linear);
}

/// Convert power in dBm to milliwatts.
inline double dbm_to_mw(double dbm) { return std::pow(10.0, dbm / 10.0); }

/// Convert power in milliwatts to dBm. Clamps at -300 dBm for zero/negative input.
inline double mw_to_dbm(double mw) {
  if (mw <= 0.0) return -300.0;
  return 10.0 * std::log10(mw);
}

/// Wavelength (m) of a carrier frequency (Hz).
inline double wavelength(double freq_hz) { return kSpeedOfLight / freq_hz; }

}  // namespace mobiwlan
