// CampusSim mechanics on small floor plans: session conservation through
// churn, the map/partition geometry, spread of sessions across shards, and
// the back-pressure contract (a full mailbox lane defers a handover without
// changing any observable).
#include "campus/campus.hpp"

#include <cstdint>

#include <gtest/gtest.h>

#include "campus_test_util.hpp"

namespace mobiwlan {
namespace {

using campus_test::expect_summaries_equal;
using campus_test::summarize;

// 8x8 grid / 4 shards absorbing 1500 sessions: small enough for a unit
// test, busy enough that every mechanism (arrival bursts, roaming,
// cross-shard handover, departures) actually fires.
campus::CampusConfig small_config() {
  campus::CampusConfig cfg = campus::campus_default_config();
  cfg.cols = 8;
  cfg.rows = 8;
  cfg.shards = 4;
  cfg.jobs = 1;
  cfg.n_sessions = 1500;
  cfg.arrival_window_epochs = 30;
  cfg.min_dwell_epochs = 4;
  cfg.mean_extra_dwell_epochs = 6.0;
  cfg.max_dwell_epochs = 24;
  cfg.horizon_epochs = 60;  // last possible departure: 30 + 24 = 54
  return cfg;
}

TEST(CampusMap, NearestApRoundTripsAndPartitionCoversEveryShard) {
  const campus::CampusMap map(8, 8, 30.0);
  for (std::size_t ap = 0; ap < map.n_aps(); ++ap)
    EXPECT_EQ(map.nearest_ap(map.ap_position(ap)), ap);

  for (std::size_t shards : {1u, 3u, 4u, 16u}) {
    std::vector<std::size_t> per_shard(shards, 0);
    std::size_t prev = 0;
    for (std::size_t ap = 0; ap < map.n_aps(); ++ap) {
      const std::size_t s = map.shard_of_ap(ap, shards);
      ASSERT_LT(s, shards);
      ASSERT_GE(s, prev) << "shards must be contiguous index bands";
      prev = s;
      ++per_shard[s];
    }
    std::size_t lo = map.n_aps(), hi = 0;
    for (std::size_t n : per_shard) {
      lo = std::min(lo, n);
      hi = std::max(hi, n);
    }
    EXPECT_GE(lo, std::size_t{1}) << shards << " shards";
    EXPECT_LE(hi - lo, std::size_t{1}) << shards << " shards";
  }
}

TEST(CampusSim, SessionConservationHoldsEveryEpoch) {
  campus::CampusSim sim(small_config());
  while (sim.epoch() < sim.config().horizon_epochs) {
    sim.step_epoch();
    ASSERT_EQ(sim.arrived(), sim.departed() + sim.active())
        << "epoch " << sim.epoch();
  }
  EXPECT_EQ(sim.arrived(), sim.config().n_sessions);
  EXPECT_EQ(sim.departed(), sim.config().n_sessions);
  EXPECT_EQ(sim.active(), 0u);
  // Every departed session folded exactly once.
  EXPECT_EQ(sim.aggregate().sessions, sim.config().n_sessions);
  EXPECT_EQ(sim.aggregate().dwell_hist.total(), sim.config().n_sessions);
}

TEST(CampusSim, SessionsSpreadAcrossShardsMidRun) {
  campus::CampusSim sim(small_config());
  while (sim.epoch() < 20) sim.step_epoch();

  std::size_t populated = 0, total = 0;
  for (std::size_t s = 0; s < sim.config().shards; ++s) {
    if (sim.shard_session_count(s) > 0) ++populated;
    total += sim.shard_session_count(s);
  }
  EXPECT_EQ(total, sim.active());
  // Homes are uniform over the floor plan, so every slab hosts someone.
  EXPECT_EQ(populated, sim.config().shards);
}

TEST(CampusSim, RepeatedConstructionIsDeterministic) {
  campus::CampusSim a(small_config());
  campus::CampusSim b(small_config());
  a.run();
  b.run();
  expect_summaries_equal(summarize(a), summarize(b), "rerun");
  EXPECT_EQ(a.handovers_sent(), b.handovers_sent());
  EXPECT_EQ(a.deferred_handovers(), b.deferred_handovers());
}

TEST(CampusSim, MailboxBackpressureIsObservablyInvisible) {
  // A wide-wandering population on a 2-shard split funnels every crossing
  // through two lanes; with capacity 1 some handovers must defer. The
  // determinism contract says a deferred session steps one more epoch at
  // the source and computes the same observables — so the starved run must
  // match the roomy run bitwise everywhere except the deferral counter.
  campus::CampusConfig roomy = small_config();
  roomy.shards = 2;
  roomy.n_sessions = 3000;
  roomy.session.walk_wander_m = 60.0;

  campus::CampusConfig starved = roomy;
  starved.mailbox_lane_capacity = 1;

  campus::CampusSim a(roomy);
  campus::CampusSim b(starved);
  a.run();
  b.run();

  ASSERT_GT(a.handovers_sent(), 0u) << "scenario produced no crossings";
  EXPECT_EQ(a.deferred_handovers(), 0u);
  EXPECT_GT(b.deferred_handovers(), 0u)
      << "capacity-1 lanes never filled; the back-pressure path went untested";
  EXPECT_LE(b.mailbox_max_depth(), std::size_t{1});
  expect_summaries_equal(summarize(a), summarize(b), "backpressure");
  // Every crossing still happens — just possibly an epoch later.
  EXPECT_EQ(a.aggregate().ap_handovers, b.aggregate().ap_handovers);
}

}  // namespace
}  // namespace mobiwlan
