// Shared helpers for the campus suite: flatten a finished CampusSim into a
// comparable summary and assert two summaries are bitwise identical.
//
// Equality here is deliberately exact — the shard-invariance contract
// (campus.hpp) promises bitwise-equal observables across shard and worker
// counts, so float fields are compared on their bit patterns, not within a
// tolerance.
#pragma once

#include <cstdint>
#include <cstring>

#include <gtest/gtest.h>

#include "campus/campus.hpp"

namespace mobiwlan::campus_test {

inline std::uint64_t bits(double x) {
  std::uint64_t b;
  std::memcpy(&b, &x, sizeof b);
  return b;
}

/// Every shard-invariant observable a run produces. Transport counters
/// (handovers, deferrals, mailbox depth) are partition-dependent and live
/// outside the summary on purpose.
struct RunSummary {
  std::uint64_t arrived = 0;
  std::uint64_t departed = 0;
  std::uint64_t active = 0;
  std::uint64_t sessions = 0;
  std::uint64_t steps = 0;
  std::uint64_t mac_steps = 0;
  std::uint64_t mpdus_sent = 0;
  std::uint64_t mpdus_failed = 0;
  std::uint64_t ap_handovers = 0;
  std::uint64_t mode_steps[campus::kModeCount] = {};
  std::uint64_t sum_rssi_bits = 0;
  std::uint64_t sum_similarity_bits = 0;
  std::uint64_t sum_goodput_bits = 0;
  std::uint64_t sum_dwell_bits = 0;
  std::uint64_t digest_xor = 0;
  std::uint64_t digest_sum = 0;
  std::uint64_t rssi_p50_bits = 0;
  std::uint64_t rssi_p90_bits = 0;
  std::uint64_t dwell_p50_bits = 0;
  std::uint64_t similarity_p50_bits = 0;
};

inline RunSummary summarize(const campus::CampusSim& sim) {
  const campus::CampusAggregate& a = sim.aggregate();
  RunSummary s;
  s.arrived = sim.arrived();
  s.departed = sim.departed();
  s.active = sim.active();
  s.sessions = a.sessions;
  s.steps = a.steps;
  s.mac_steps = a.mac_steps;
  s.mpdus_sent = a.mpdus_sent;
  s.mpdus_failed = a.mpdus_failed;
  s.ap_handovers = a.ap_handovers;
  for (std::size_t m = 0; m < campus::kModeCount; ++m)
    s.mode_steps[m] = a.mode_steps[m];
  s.sum_rssi_bits = bits(a.sum_mean_rssi_dbm);
  s.sum_similarity_bits = bits(a.sum_mean_similarity);
  s.sum_goodput_bits = bits(a.sum_mean_goodput_mbps);
  s.sum_dwell_bits = bits(a.sum_dwell_epochs);
  s.digest_xor = a.digest_xor;
  s.digest_sum = a.digest_sum;
  s.rssi_p50_bits = bits(a.rssi_hist.quantile(0.5));
  s.rssi_p90_bits = bits(a.rssi_hist.quantile(0.9));
  s.dwell_p50_bits = bits(a.dwell_hist.quantile(0.5));
  s.similarity_p50_bits = bits(a.similarity_hist.quantile(0.5));
  return s;
}

inline void expect_summaries_equal(const RunSummary& a, const RunSummary& b,
                                   const char* label) {
  EXPECT_EQ(a.arrived, b.arrived) << label;
  EXPECT_EQ(a.departed, b.departed) << label;
  EXPECT_EQ(a.active, b.active) << label;
  EXPECT_EQ(a.sessions, b.sessions) << label;
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.mac_steps, b.mac_steps) << label;
  EXPECT_EQ(a.mpdus_sent, b.mpdus_sent) << label;
  EXPECT_EQ(a.mpdus_failed, b.mpdus_failed) << label;
  EXPECT_EQ(a.ap_handovers, b.ap_handovers) << label;
  for (std::size_t m = 0; m < campus::kModeCount; ++m)
    EXPECT_EQ(a.mode_steps[m], b.mode_steps[m]) << label << " mode " << m;
  EXPECT_EQ(a.sum_rssi_bits, b.sum_rssi_bits) << label;
  EXPECT_EQ(a.sum_similarity_bits, b.sum_similarity_bits) << label;
  EXPECT_EQ(a.sum_goodput_bits, b.sum_goodput_bits) << label;
  EXPECT_EQ(a.sum_dwell_bits, b.sum_dwell_bits) << label;
  EXPECT_EQ(a.digest_xor, b.digest_xor) << label;
  EXPECT_EQ(a.digest_sum, b.digest_sum) << label;
  EXPECT_EQ(a.rssi_p50_bits, b.rssi_p50_bits) << label;
  EXPECT_EQ(a.rssi_p90_bits, b.rssi_p90_bits) << label;
  EXPECT_EQ(a.dwell_p50_bits, b.dwell_p50_bits) << label;
  EXPECT_EQ(a.similarity_p50_bits, b.similarity_p50_bits) << label;
}

}  // namespace mobiwlan::campus_test
