// Concurrent mailbox stress — the TSan target (ci/check.sh builds this
// under -DMOBIWLAN_SANITIZE=thread and runs it with halt_on_error).
//
// Real threads drive the exact concurrency shape CampusSim uses: each
// producer owns one source-shard row of lanes (SPSC: one producer per
// lane), a single consumer drains every destination, and both sides run
// at once. Producers spin-yield on a full lane, so the test also proves
// back-pressure plus a live consumer cannot deadlock: the consumer always
// drains, so every producer eventually makes progress. Conservation and
// per-lane FIFO are asserted on the consumer side; the acquire/release
// cursor discipline in SpscRing is what TSan is pointed at.
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "campus/mailbox.hpp"

namespace mobiwlan {
namespace {

constexpr std::size_t kShards = 4;
constexpr std::uint64_t kPerLane = 5000;  // messages per (src, dst) lane

std::uint64_t encode(std::size_t src, std::size_t dst, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(src) << 48) |
         (static_cast<std::uint64_t>(dst) << 32) | seq;
}

TEST(MailboxStress, ConcurrentChurnConservesAndOrders) {
  campus::HandoverMailbox<std::uint64_t> mb(kShards, 64);

  std::vector<std::thread> producers;
  producers.reserve(kShards);
  for (std::size_t src = 0; src < kShards; ++src) {
    producers.emplace_back([&mb, src] {
      std::uint64_t seq[kShards] = {};
      // Round-robin over destinations so every lane fills concurrently.
      for (std::uint64_t k = 0; k < kPerLane * kShards; ++k) {
        const std::size_t dst = static_cast<std::size_t>(k % kShards);
        std::uint64_t msg = encode(src, dst, seq[dst]);
        while (!mb.try_send(src, dst, msg)) std::this_thread::yield();
        ++seq[dst];
      }
    });
  }

  // Single consumer (the campus serial tail) draining while producers run.
  const std::uint64_t want = kShards * kShards * kPerLane;
  std::uint64_t delivered = 0;
  std::uint64_t next_expected[kShards][kShards] = {};
  while (delivered < want) {
    std::uint64_t before = delivered;
    for (std::size_t dst = 0; dst < kShards; ++dst) {
      mb.drain_to(dst, [&](std::uint64_t msg) {
        const auto src = static_cast<std::size_t>(msg >> 48);
        const auto msg_dst = static_cast<std::size_t>((msg >> 32) & 0xffff);
        const std::uint64_t seq = msg & 0xffffffffULL;
        // EXPECT (not ASSERT): an early return here would skip ++delivered
        // and spin the drain loop forever on a failure.
        EXPECT_LT(src, kShards);
        EXPECT_EQ(msg_dst, dst);
        EXPECT_EQ(seq, next_expected[src][dst]) << "per-sender FIFO violated";
        ++next_expected[src % kShards][dst];
        ++delivered;
      });
    }
    if (delivered == before) std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();

  // Nothing arrives after the producers are done and the count matched.
  for (std::size_t dst = 0; dst < kShards; ++dst)
    mb.drain_to(dst, [&](std::uint64_t) { ++delivered; });
  EXPECT_EQ(delivered, want);
  for (std::size_t s = 0; s < kShards; ++s)
    for (std::size_t d = 0; d < kShards; ++d)
      EXPECT_EQ(next_expected[s][d], kPerLane);
  EXPECT_LE(mb.max_depth(), mb.lane_capacity());
  EXPECT_GT(mb.max_depth(), 0u);
}

}  // namespace
}  // namespace mobiwlan
