// pool_churn_test — the slab pool's recycling and allocation contracts on
// a small campus (fast enough for the default suite; the hour-long version
// lives in soak_test.cpp).
//
//   - SessionPool recycling: a released session's memory is handed back by
//     the next acquire (LIFO), reinitialized in place with zero heap
//     traffic once its internal buffers have grown;
//   - slab growth tracks peak RESIDENCY, not total churn: a campus that
//     admits N sessions over a long window constructs far fewer than N
//     slab slots;
//   - the fused hot phase reaches an allocation-free steady state once the
//     arrival ramp ends (metered by the counting operator-new).
#include <cstdint>

#include <gtest/gtest.h>

#include "campus/campus.hpp"
#include "campus/session_pool.hpp"
#include "util/alloc_count.hpp"

namespace mobiwlan {
namespace {

TEST(SessionPool, RecycledAcquireReusesMemoryWithoutAllocating) {
  ASSERT_TRUE(alloc_hook_active())
      << "counting allocator not linked; test would vacuously pass";

  campus::CampusConfig cfg = campus::campus_default_config();
  campus::CampusMap map(cfg.cols, cfg.rows, cfg.pitch_m);
  campus::SessionPool pool(64);

  campus::SessionPtr first =
      pool.acquire(7, cfg.master_seed, map, cfg.session, 1, 10);
  campus::Session* raw = first.get();
  first.reset();  // releases to the free list, stays constructed
  EXPECT_EQ(pool.free_count(), 1u);

  const std::uint64_t before = alloc_count();
  campus::SessionPtr second =
      pool.acquire(8, cfg.master_seed, map, cfg.session, 2, 12);
  EXPECT_EQ(alloc_count() - before, 0u)
      << "recycled acquire touched the heap";
  EXPECT_EQ(second.get(), raw) << "free list is LIFO; expected slot reuse";
  EXPECT_EQ(pool.free_count(), 0u);
  EXPECT_EQ(pool.constructed(), 1u);

  // The recycled session is a fully re-drawn id-8 session, not a stale
  // id-7: reinit re-derives everything id-determined.
  EXPECT_EQ(second->id(), 8u);
  EXPECT_EQ(second->stats().arrival_epoch, 2u);
  EXPECT_EQ(second->depart_epoch(), 14u);
}

TEST(CampusPoolChurn, SlabGrowthTracksPeakResidencyAndHotPhaseGoesQuiet) {
  ASSERT_TRUE(alloc_hook_active())
      << "counting allocator not linked; test would vacuously pass";

  campus::CampusConfig cfg = campus::campus_default_config();
  cfg.cols = 8;
  cfg.rows = 8;
  cfg.shards = 4;
  cfg.jobs = 1;  // hot-phase allocs are only metered on the serial path
  cfg.n_sessions = 4000;
  cfg.arrival_window_epochs = 120;
  cfg.horizon_epochs = 170;  // window + max dwell (40) + settling

  campus::CampusSim sim(cfg);

  // Snapshot the meter a little after the arrival window closes: occupancy
  // only shrinks from there, so batch/slab high-water marks are behind us.
  const std::uint64_t steady_from = cfg.arrival_window_epochs + 8;
  std::uint64_t steady_allocs = 0;
  std::uint64_t peak_active = 0;
  while (sim.epoch() < cfg.horizon_epochs) {
    sim.step_epoch();
    if (sim.active() > peak_active) peak_active = sim.active();
    if (sim.epoch() == steady_from) steady_allocs = sim.hot_phase_allocs();
  }

  EXPECT_EQ(sim.arrived(), cfg.n_sessions);
  EXPECT_EQ(sim.departed(), cfg.n_sessions);
  EXPECT_EQ(sim.active(), 0u);

  // Churn forced heavy recycling: the pool never built anywhere near one
  // slot per admitted session. (Slabs round the peak up by less than one
  // slab; peak_active is sampled at epoch ends, so allow that slack.)
  EXPECT_LT(sim.pool_sessions(), cfg.n_sessions / 2);
  EXPECT_GE(sim.pool_sessions(), peak_active);

  // And the fused phase stopped allocating once the ramp ended.
  EXPECT_EQ(sim.hot_phase_allocs(), steady_allocs)
      << "hot phase allocated after the arrival ramp ended";
}

}  // namespace
}  // namespace mobiwlan
