// The shard-invariance contract at unit-test scale: the same campus
// scenario run under different shard counts and different worker counts
// produces bitwise-identical aggregates — including sessions handed across
// shard boundaries mid-classifier-window, whose hold-then-decay state must
// travel with them. The 1024-AP / 100k-session version of this contract is
// gated by `mobiwlan-bench --campus-check` (ci/campus_gate.sh); this file
// keeps the property cheap to run and easy to bisect.
#include <cstdint>

#include <gtest/gtest.h>

#include "campus/campus.hpp"
#include "campus_test_util.hpp"
#include "core/mobility_mode.hpp"

namespace mobiwlan {
namespace {

using campus_test::RunSummary;
using campus_test::expect_summaries_equal;
using campus_test::summarize;

campus::CampusConfig base_config() {
  campus::CampusConfig cfg = campus::campus_default_config();
  cfg.cols = 16;
  cfg.rows = 16;
  cfg.shards = 1;
  cfg.jobs = 1;
  cfg.n_sessions = 2000;
  cfg.arrival_window_epochs = 24;
  cfg.min_dwell_epochs = 4;
  cfg.mean_extra_dwell_epochs = 8.0;
  cfg.max_dwell_epochs = 24;
  cfg.horizon_epochs = 50;  // last departure: 24 + 24 = 48
  return cfg;
}

struct RunResult {
  RunSummary summary;
  std::uint64_t handovers_sent;
  std::uint64_t deferred;
};

RunResult run(campus::CampusConfig cfg, std::size_t shards, std::size_t jobs) {
  cfg.shards = shards;
  cfg.jobs = jobs;
  campus::CampusSim sim(cfg);
  sim.run();
  return {summarize(sim), sim.handovers_sent(), sim.deferred_handovers()};
}

TEST(ShardInvariance, AggregateIdenticalAcrossShardCounts) {
  const campus::CampusConfig cfg = base_config();
  const RunResult one = run(cfg, 1, 1);
  const RunResult four = run(cfg, 4, 1);
  const RunResult sixteen = run(cfg, 16, 1);

  // The single shard never sends a handover; the partitioned runs must —
  // otherwise this test compares runs that never exercised the mailbox.
  EXPECT_EQ(one.handovers_sent, 0u);
  EXPECT_GT(four.handovers_sent, 0u);
  EXPECT_GT(sixteen.handovers_sent, 0u);

  expect_summaries_equal(one.summary, four.summary, "1 vs 4 shards");
  expect_summaries_equal(one.summary, sixteen.summary, "1 vs 16 shards");
}

TEST(ShardInvariance, AggregateIdenticalAcrossWorkerCounts) {
  campus::CampusConfig cfg = base_config();
  const RunResult serial = run(cfg, 8, 1);
  const RunResult pooled4 = run(cfg, 8, 4);
  const RunResult pooled8 = run(cfg, 8, 8);

  expect_summaries_equal(serial.summary, pooled4.summary, "jobs 1 vs 4");
  expect_summaries_equal(serial.summary, pooled8.summary, "jobs 1 vs 8");
  // Worker count may not even change the transport counters: who steps a
  // shard is scheduling, what the shard sends is not.
  EXPECT_EQ(serial.handovers_sent, pooled8.handovers_sent);
  EXPECT_EQ(serial.deferred, pooled8.deferred);
}

TEST(ShardInvariance, BoundaryCrossingMidWindowCarriesClassifierState) {
  // Long-dwelling, wide-wandering sessions on narrow two-row slabs: most
  // sessions cross a shard boundary at some arbitrary point inside their
  // classifier similarity window, with hold-then-decay timers running.
  // Handover moves the Session object wholesale, so the sharded run must
  // reproduce the unsharded digests exactly; if any classifier state
  // (similarity anchor, hold timer, decayed mode) were re-initialized on
  // transfer, the mode-dwell counters and the step digests would diverge.
  campus::CampusConfig cfg = base_config();
  cfg.cols = 8;
  cfg.rows = 8;
  cfg.n_sessions = 600;
  cfg.min_dwell_epochs = 8;
  cfg.mean_extra_dwell_epochs = 10.0;
  cfg.max_dwell_epochs = 30;
  cfg.arrival_window_epochs = 16;
  cfg.horizon_epochs = 50;
  cfg.session.walk_wander_m = 60.0;

  const RunResult one = run(cfg, 1, 1);
  const RunResult four = run(cfg, 4, 1);

  ASSERT_GT(four.handovers_sent, 0u) << "no session crossed a boundary";
  // The classifier actually held/decayed through macro modes in this
  // scenario — the state whose transfer the test is about.
  std::uint64_t macro_steps = 0;
  for (std::size_t m = static_cast<std::size_t>(MobilityMode::kMacroToward);
       m < campus::kModeCount; ++m)
    macro_steps += four.summary.mode_steps[m];
  EXPECT_GT(macro_steps, 0u);

  expect_summaries_equal(one.summary, four.summary, "boundary crossing");
}

}  // namespace
}  // namespace mobiwlan
