// Campus soak: one simulated hour of continuous client churn on a reduced
// floor plan (label `soak` — excluded from the tier1 seed suite).
//
// What an hour of churn must prove that the short runs cannot:
//   - session conservation (arrived == departed + active) holds at every
//     checkpoint, and every session folds into the aggregate exactly once;
//   - the shard step loop reaches an allocation-free steady state: once the
//     arrival ramp ends, the hot phase (batched sample + step) never touches
//     the heap again (metered by the linked counting operator-new);
//   - mailbox depth stays bounded far below the lane capacity and no
//     handover is ever deferred at the default capacity.
#include <cstdint>

#include <gtest/gtest.h>

#include "campus/campus.hpp"
#include "util/alloc_count.hpp"

namespace mobiwlan {
namespace {

TEST(CampusSoak, OneSimulatedHourOfChurn) {
  ASSERT_TRUE(alloc_hook_active())
      << "link mobiwlan_alloc_hook or the steady-state assertion is vacuous";

  campus::CampusConfig cfg = campus::campus_default_config();
  cfg.cols = 8;
  cfg.rows = 8;
  cfg.shards = 4;
  cfg.jobs = 1;  // hot-phase allocs are only metered on the serial path
  const auto hour_epochs =
      static_cast<std::uint64_t>(3600.0 / cfg.session.tick_s);  // 7200
  cfg.n_sessions = 20000;
  cfg.arrival_window_epochs = hour_epochs - 1200;
  cfg.min_dwell_epochs = 8;
  cfg.mean_extra_dwell_epochs = 24.0;
  cfg.max_dwell_epochs = 1000;  // window + max dwell < horizon
  cfg.horizon_epochs = hour_epochs;

  campus::CampusSim sim(cfg);

  // Occupancy can only shrink once arrivals stop, so the per-shard batch
  // high-water marks are behind us shortly after the window closes; a
  // late cross-shard handover could still nudge one shard past its own
  // peak, hence the settling margin before the steady-state snapshot.
  const std::uint64_t steady_from = cfg.arrival_window_epochs + 64;
  std::uint64_t steady_allocs = 0;
  std::uint64_t last_arrived = 0;

  while (sim.epoch() < cfg.horizon_epochs) {
    sim.step_epoch();
    if (sim.epoch() == steady_from) steady_allocs = sim.hot_phase_allocs();
    if (sim.epoch() % 256 == 0 || sim.epoch() == cfg.horizon_epochs) {
      ASSERT_EQ(sim.arrived(), sim.departed() + sim.active())
          << "conservation broken at epoch " << sim.epoch();
      ASSERT_GE(sim.arrived(), last_arrived);
      last_arrived = sim.arrived();
    }
  }

  // Churn completed: everyone arrived, everyone left, everyone counted once.
  EXPECT_EQ(sim.arrived(), cfg.n_sessions);
  EXPECT_EQ(sim.departed(), cfg.n_sessions);
  EXPECT_EQ(sim.active(), 0u);
  EXPECT_EQ(sim.aggregate().sessions, cfg.n_sessions);
  EXPECT_EQ(sim.aggregate().dwell_hist.total(), cfg.n_sessions);

  // The walk actually moved people between slabs during the hour.
  EXPECT_GT(sim.handovers_sent(), 0u);

  // Zero steady-state allocations in the shard step loop.
  EXPECT_EQ(sim.hot_phase_allocs(), steady_allocs)
      << "hot phase allocated after the arrival ramp ended";

  // Mailbox health: depth bounded well under the lane capacity, nothing
  // ever deferred at the default capacity.
  EXPECT_EQ(sim.deferred_handovers(), 0u);
  EXPECT_LE(sim.mailbox_max_depth(), cfg.mailbox_lane_capacity / 4);
}

}  // namespace
}  // namespace mobiwlan
