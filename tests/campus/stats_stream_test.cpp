// Tests for the streamed statistics primitives (campus/stats_stream.hpp),
// pinning the StreamHistogram quantile edge semantics. The load-bearing
// case is q >= 1.0: it must report the *upper* edge of the last occupied
// bin (the pre-fix code returned the lower edge like every other quantile,
// understating max-style statistics by up to one bin width — and returning
// a value strictly below every sample in that bin).
#include "campus/stats_stream.hpp"

#include <gtest/gtest.h>

namespace mobiwlan::campus {
namespace {

TEST(StreamHistogramTest, EmptyHistogramReturnsLoForAnyQuantile) {
  const StreamHistogram h(-5.0, 5.0, 10);
  EXPECT_EQ(h.total(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), -5.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), -5.0);
}

TEST(StreamHistogramTest, QuantileZeroReturnsLo) {
  StreamHistogram h(0.0, 10.0, 10);
  h.add(7.5);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 0.0);
}

TEST(StreamHistogramTest, MedianReportsBinLowerEdge) {
  StreamHistogram h(0.0, 10.0, 10);
  h.add(2.5);  // lands in bin [2, 3)
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 2.0);
}

TEST(StreamHistogramTest, FullQuantileReportsUpperEdgeOfLastOccupiedBin) {
  StreamHistogram h(0.0, 10.0, 10);
  h.add(2.5);  // only bin [2, 3) occupied: the max lives inside it
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 3.0);
  h.add(9.1);  // last occupied bin is now [9, 10)
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);
}

TEST(StreamHistogramTest, FullQuantileOnLastBinIsExactlyHi) {
  // A sample at hi clamps into the last bin; its upper edge must come out
  // as exactly hi (edge index == bin count cancels the division).
  StreamHistogram h(-1.0, 1.0, 7);
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 1.0);
}

TEST(StreamHistogramTest, OutOfRangeSamplesClampToEdgeBins) {
  StreamHistogram h(0.0, 10.0, 10);
  h.add(-100.0);
  h.add(100.0);
  EXPECT_EQ(h.total(), 2u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);   // low outlier in bin [0, 1)
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 10.0);  // high outlier in [9, 10)
}

TEST(StreamHistogramTest, ZeroBinConstructionDegradesToOneBin) {
  StreamHistogram h(0.0, 4.0, 0);
  h.add(1.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 4.0);
}

TEST(StreamHistogramTest, QuantilesAreMonotoneInQ) {
  StreamHistogram h(0.0, 100.0, 50);
  for (int i = 0; i < 100; ++i) h.add(static_cast<double>(i));
  double prev = h.quantile(0.0);
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    const double v = h.quantile(q);
    EXPECT_GE(v, prev) << "q " << q;
    prev = v;
  }
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 100.0);
}

}  // namespace
}  // namespace mobiwlan::campus
