// channel_batch_equivalence_test — ChannelBatch vs per-link sampling.
//
// The batched engine must be a drop-in for N independent
// WirelessChannel::sample_into loops: identical RNG draw order per link
// (quantized outputs match exactly) and CSI equal to within 1e-12 of the
// link's own CSI scale. The tolerance is scale-relative, not per-element
// relative: deep-faded subcarriers carry ~1e-15 absolute error like every
// other element, but their magnitudes are arbitrarily small, so a
// per-element relative measure would amplify noise on values that carry no
// signal. CMake re-runs this binary under MOBIWLAN_FORCE_SCALAR=1, which
// pins both sides to their scalar kernels.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "channel_golden_cases.hpp"

namespace mobiwlan {
namespace {

using goldencase::kNumCases;
using goldencase::make_golden_channel;

/// Two independent, identical realizations of the 8 golden channels: one
/// registered with a batch, one sampled per link. Both sides draw from
/// their own RNG state, so lockstep call sequences keep them comparable.
struct GoldenPair {
  std::vector<std::unique_ptr<WirelessChannel>> batch_links;
  std::vector<std::unique_ptr<WirelessChannel>> ref_links;
  ChannelBatch batch;

  GoldenPair() {
    for (std::size_t idx = 0; idx < kNumCases; ++idx) {
      batch_links.push_back(make_golden_channel(idx));
      ref_links.push_back(make_golden_channel(idx));
      batch.add_link(batch_links.back().get());
    }
  }
};

double csi_scale(const CsiMatrix& m) {
  double scale = 0.0;
  for (const cplx& z : m.raw())
    scale = std::max({scale, std::abs(z.real()), std::abs(z.imag())});
  return std::max(scale, 1e-300);
}

void expect_csi_close(const CsiMatrix& got, const CsiMatrix& want,
                      const char* what, std::size_t link) {
  ASSERT_EQ(got.raw().size(), want.raw().size());
  const double tol = 1e-12 * csi_scale(want);
  for (std::size_t k = 0; k < want.raw().size(); ++k) {
    EXPECT_NEAR(got.raw()[k].real(), want.raw()[k].real(), tol)
        << what << " link " << link << " element " << k;
    EXPECT_NEAR(got.raw()[k].imag(), want.raw()[k].imag(), tol)
        << what << " link " << link << " element " << k;
  }
}

TEST(ChannelBatchEquivalence, SampleRangeMatchesPerLinkLoop) {
  GoldenPair g;
  ChannelBatch::Scratch scratch;
  std::vector<ChannelSample> out(kNumCases);
  WirelessChannel::PathScratch ref_scratch;
  ChannelSample ref;

  for (const double t : {0.0, 0.25, 0.5, 1.0, 2.0, 3.5}) {
    g.batch.sample_range(t, 0, kNumCases, out.data(), scratch);
    for (std::size_t i = 0; i < kNumCases; ++i) {
      g.ref_links[i]->sample_into(t, ref, ref_scratch);
      SCOPED_TRACE(::testing::Message()
                   << goldencase::case_name(i) << " at t=" << t);
      // Quantized outputs share the exact draw sequence, so they match
      // bitwise; SNR is continuous and the batch derives it through the
      // fastmath log, so it agrees to rounding instead.
      EXPECT_EQ(out[i].rssi_dbm, ref.rssi_dbm);
      EXPECT_EQ(out[i].tof_cycles, ref.tof_cycles);
      EXPECT_NEAR(out[i].snr_db, ref.snr_db,
                  1e-12 * std::max(1.0, std::abs(ref.snr_db)));
      EXPECT_EQ(out[i].t, ref.t);
      EXPECT_NEAR(out[i].true_distance_m, ref.true_distance_m,
                  1e-12 * std::max(1.0, ref.true_distance_m));
      expect_csi_close(out[i].csi, ref.csi, "sample_range", i);
    }
  }
}

TEST(ChannelBatchEquivalence, SubrangeSamplingMatches) {
  GoldenPair g;
  ChannelBatch::Scratch scratch;
  std::vector<ChannelSample> out(kNumCases);
  WirelessChannel::PathScratch ref_scratch;
  ChannelSample ref;

  // Two disjoint ranges cover the batch; the per-link results must not
  // depend on how the caller chunks the range (the sharding contract).
  g.batch.sample_range(1.0, 0, 3, out.data(), scratch);
  g.batch.sample_range(1.0, 3, kNumCases, out.data(), scratch);
  for (std::size_t i = 0; i < kNumCases; ++i) {
    g.ref_links[i]->sample_into(1.0, ref, ref_scratch);
    SCOPED_TRACE(goldencase::case_name(i));
    EXPECT_EQ(out[i].rssi_dbm, ref.rssi_dbm);
    EXPECT_EQ(out[i].tof_cycles, ref.tof_cycles);
    expect_csi_close(out[i].csi, ref.csi, "subrange", i);
  }
}

TEST(ChannelBatchEquivalence, MeasuredAndTrueCsiMatch) {
  GoldenPair g;
  ChannelBatch::Scratch scratch;
  CsiMatrix got;
  CsiMatrix want;
  WirelessChannel::PathScratch ref_scratch;

  for (std::size_t i = 0; i < kNumCases; ++i) {
    SCOPED_TRACE(goldencase::case_name(i));
    g.batch.csi_into(i, 0.75, got, scratch);
    g.ref_links[i]->csi_at_into(0.75, want, ref_scratch);
    expect_csi_close(got, want, "csi_into", i);

    g.batch.csi_true_into(i, 2.0, got, scratch);
    g.ref_links[i]->csi_true_into(2.0, want, ref_scratch);
    expect_csi_close(got, want, "csi_true_into", i);
  }
}

TEST(ChannelBatchEquivalence, TofSweepMatchesPerLinkReadings) {
  GoldenPair g;
  std::vector<double> sweep(kNumCases);
  for (const double t : {0.5, 1.5}) {
    g.batch.tof_all(t, sweep.data());
    for (std::size_t i = 0; i < kNumCases; ++i) {
      SCOPED_TRACE(goldencase::case_name(i));
      EXPECT_EQ(sweep[i], g.ref_links[i]->tof_cycles(t));
    }
  }
}

TEST(ChannelBatchEquivalence, StrongestLinkMatchesArgmaxScan) {
  GoldenPair g;
  ChannelBatch::Scratch scratch;
  for (const double t : {0.0, 1.0, 4.0}) {
    const std::size_t got = g.batch.strongest_link(t, scratch);
    std::size_t want = 0;
    double best = -1e9;
    for (std::size_t i = 0; i < kNumCases; ++i) {
      const double rssi = g.ref_links[i]->rssi_dbm(t);
      if (rssi > best) {
        best = rssi;
        want = i;
      }
    }
    EXPECT_EQ(got, want) << "t=" << t;
  }
}

}  // namespace
}  // namespace mobiwlan
