// channel_batch_f32_test — the float32 precision tier of ChannelBatch.
//
// The fp32 tier replaces the per-subcarrier plane synthesis (base phasors,
// steering entries, MAC) with float kernels while geometry, path state and
// every RNG draw stay double. The contract under test:
//   * CSI agrees with the fp64 tier to 1e-4 of the link's CSI scale (the
//     documented budget; the measured worst case is ~2e-6 — see DESIGN.md
//     §5). Scale-relative, like the fp64 equivalence suite, because
//     deep-faded elements carry the same absolute error as every other
//     element at magnitudes that carry no signal.
//   * RSSI and ToF are bitwise identical across tiers: they come from the
//     double geometry/RNG path, which the precision selector must not
//     touch. SNR routes the CSI power through the double reduction either
//     way, so it agrees to the fp32 CSI budget rather than bitwise.
//   * The RNG stream stays in lockstep: switching precision mid-run must
//     not shift any draw (quantized outputs after a switch match a
//     never-switched fp64 reference exactly).
//   * The fp32 path honors the zero-allocation steady state (this binary
//     links the counting allocator).
// CMake re-runs this binary under each MOBIWLAN_SIMD_TIER (label
// `precision`), so every fp32 kernel tier gets the same checks.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>
#include <vector>

#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "channel_golden_cases.hpp"
#include "util/alloc_count.hpp"
#include "util/simd.hpp"

namespace mobiwlan {
namespace {

using goldencase::kNumCases;
using goldencase::make_golden_channel;

/// Forces the precision tier for one scope, always restoring the default.
struct PrecisionGuard {
  explicit PrecisionGuard(int precision) {
    simd::set_forced_precision(precision);
  }
  ~PrecisionGuard() { simd::set_forced_precision(-1); }
};

/// Two identical realizations of the golden channels, each in its own
/// batch: one synthesized at fp32, one at fp64. Lockstep call sequences
/// keep the RNG streams comparable.
struct GoldenTierPair {
  std::vector<std::unique_ptr<WirelessChannel>> f32_links;
  std::vector<std::unique_ptr<WirelessChannel>> f64_links;
  ChannelBatch f32_batch;
  ChannelBatch f64_batch;

  GoldenTierPair() {
    for (std::size_t idx = 0; idx < kNumCases; ++idx) {
      f32_links.push_back(make_golden_channel(idx));
      f64_links.push_back(make_golden_channel(idx));
      f32_batch.add_link(f32_links.back().get());
      f64_batch.add_link(f64_links.back().get());
    }
  }
};

double csi_scale(const CsiMatrix& m) {
  double scale = 0.0;
  for (const cplx& z : m.raw())
    scale = std::max({scale, std::abs(z.real()), std::abs(z.imag())});
  return std::max(scale, 1e-300);
}

/// The fp32 acceptance bound: 1e-4 of the CSI scale (documented budget,
/// ~50x above the measured worst case so a real kernel regression — a
/// wrong constant, a dropped correction term — still trips it).
void expect_csi_f32_close(const CsiMatrix& got, const CsiMatrix& want,
                          const char* what, std::size_t link) {
  ASSERT_EQ(got.raw().size(), want.raw().size());
  const double tol = 1e-4 * csi_scale(want);
  for (std::size_t k = 0; k < want.raw().size(); ++k) {
    EXPECT_NEAR(got.raw()[k].real(), want.raw()[k].real(), tol)
        << what << " link " << link << " element " << k;
    EXPECT_NEAR(got.raw()[k].imag(), want.raw()[k].imag(), tol)
        << what << " link " << link << " element " << k;
  }
}

TEST(ChannelBatchF32, TrueCsiWithinBudgetOfFp64) {
  GoldenTierPair g;
  ChannelBatch::Scratch s32, s64;
  CsiMatrix got, want;
  for (const double t : {0.0, 0.25, 0.5, 1.0, 2.0, 3.5}) {
    for (std::size_t i = 0; i < kNumCases; ++i) {
      SCOPED_TRACE(::testing::Message()
                   << goldencase::case_name(i) << " at t=" << t);
      {
        PrecisionGuard guard(1);
        g.f32_batch.csi_true_into(i, t, got, s32);
      }
      g.f64_batch.csi_true_into(i, t, want, s64);
      expect_csi_f32_close(got, want, "csi_true_into", i);
    }
  }
}

TEST(ChannelBatchF32, MeasuredCsiWithinBudgetOfFp64) {
  GoldenTierPair g;
  ChannelBatch::Scratch s32, s64;
  CsiMatrix got, want;
  // csi_into draws measurement noise; identical draw order on both sides
  // keeps the noise realizations equal, leaving only the synthesis delta.
  for (std::size_t i = 0; i < kNumCases; ++i) {
    SCOPED_TRACE(goldencase::case_name(i));
    {
      PrecisionGuard guard(1);
      g.f32_batch.csi_into(i, 0.75, got, s32);
    }
    g.f64_batch.csi_into(i, 0.75, want, s64);
    expect_csi_f32_close(got, want, "csi_into", i);
  }
}

TEST(ChannelBatchF32, QuantizedOutputsBitwiseAcrossTiers) {
  GoldenTierPair g;
  ChannelBatch::Scratch s32, s64;
  std::vector<ChannelSample> out32(kNumCases), out64(kNumCases);
  for (const double t : {0.0, 0.5, 1.0, 2.0}) {
    {
      PrecisionGuard guard(1);
      g.f32_batch.sample_range(t, 0, kNumCases, out32.data(), s32);
    }
    g.f64_batch.sample_range(t, 0, kNumCases, out64.data(), s64);
    for (std::size_t i = 0; i < kNumCases; ++i) {
      SCOPED_TRACE(::testing::Message()
                   << goldencase::case_name(i) << " at t=" << t);
      // Geometry + RNG stay double: bitwise, not merely close.
      EXPECT_EQ(out32[i].rssi_dbm, out64[i].rssi_dbm);
      EXPECT_EQ(out32[i].tof_cycles, out64[i].tof_cycles);
      EXPECT_EQ(out32[i].t, out64[i].t);
      EXPECT_EQ(out32[i].true_distance_m, out64[i].true_distance_m);
      // SNR funnels the fp32 CSI through the power sum: near-equal.
      EXPECT_NEAR(out32[i].snr_db, out64[i].snr_db,
                  1e-4 * std::max(1.0, std::abs(out64[i].snr_db)));
      expect_csi_f32_close(out32[i].csi, out64[i].csi, "sample_range", i);
    }
  }
}

TEST(ChannelBatchF32, TiersAgreeOnFp32Plane) {
  // The fp32 kernels themselves across SIMD tiers: scalar vs the widest
  // tier the host has. Much tighter than the fp64 budget — the tiers run
  // the same float operations in a different lane order, so only the MAC
  // reassociation differs (measured <= ~5e-7 of scale).
  if (simd::active_tier() == simd::Tier::kScalar)
    GTEST_SKIP() << "host (or forced tier) is scalar-only: nothing to compare";
  GoldenTierPair g;  // f32 batch at best tier, f64 batch forced scalar
  ChannelBatch::Scratch s_wide, s_scalar;
  CsiMatrix wide, scalar;
  PrecisionGuard precision(1);
  for (std::size_t i = 0; i < kNumCases; ++i) {
    SCOPED_TRACE(goldencase::case_name(i));
    g.f32_batch.csi_true_into(i, 1.25, wide, s_wide);
    simd::set_forced_tier(0);
    g.f64_batch.csi_true_into(i, 1.25, scalar, s_scalar);
    simd::set_forced_tier(-1);
    ASSERT_EQ(wide.raw().size(), scalar.raw().size());
    const double tol = 5e-6 * csi_scale(scalar);
    for (std::size_t k = 0; k < scalar.raw().size(); ++k) {
      EXPECT_NEAR(wide.raw()[k].real(), scalar.raw()[k].real(), tol)
          << "element " << k;
      EXPECT_NEAR(wide.raw()[k].imag(), scalar.raw()[k].imag(), tol)
          << "element " << k;
    }
  }
}

TEST(ChannelBatchF32, RngLockstepAcrossPrecisionSwitches) {
  // Alternating tiers every step must leave the draw sequence untouched:
  // quantized outputs from the switching batch match the never-switched
  // fp64 reference bitwise at every step.
  GoldenTierPair g;
  ChannelBatch::Scratch s_mix, s_ref;
  std::vector<ChannelSample> mix(kNumCases), ref(kNumCases);
  for (int step = 0; step < 8; ++step) {
    const double t = 0.25 * step;
    {
      PrecisionGuard guard(step & 1);
      g.f32_batch.sample_range(t, 0, kNumCases, mix.data(), s_mix);
    }
    g.f64_batch.sample_range(t, 0, kNumCases, ref.data(), s_ref);
    for (std::size_t i = 0; i < kNumCases; ++i) {
      SCOPED_TRACE(::testing::Message()
                   << goldencase::case_name(i) << " step " << step);
      EXPECT_EQ(mix[i].rssi_dbm, ref[i].rssi_dbm);
      EXPECT_EQ(mix[i].tof_cycles, ref[i].tof_cycles);
    }
  }
}

TEST(ChannelBatchF32, SteadyStateAllocatesNothing) {
  PrecisionGuard guard(1);
  GoldenTierPair g;
  ChannelBatch::Scratch scratch;
  std::vector<ChannelSample> out(kNumCases);
  CsiMatrix m;
  // Warm every fp32 scratch plane (base, steering, staging) once.
  g.f32_batch.sample_range(0.0, 0, kNumCases, out.data(), scratch);
  g.f32_batch.csi_true_into(0, 0.0, m, scratch);
  const std::uint64_t before = alloc_count();
  for (int step = 1; step <= 64; ++step) {
    const double t = 0.01 * step;
    g.f32_batch.sample_range(t, 0, kNumCases, out.data(), scratch);
    g.f32_batch.csi_true_into(step % kNumCases, t, m, scratch);
  }
  EXPECT_EQ(alloc_count(), before)
      << "fp32 steady-state sampling touched the heap";
}

}  // namespace
}  // namespace mobiwlan
