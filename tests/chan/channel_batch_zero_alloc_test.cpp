// channel_batch_zero_alloc_test — the batched engine's allocation contract.
//
// Links the counting operator-new replacement (mobiwlan_alloc_hook) and
// asserts that once the scratch planes have grown to the batch's working
// set, the range-sampling, single-link CSI, ToF-sweep and roaming-scan
// entry points never touch the heap again. This is what lets the runtime
// loops call the batch at measurement cadence without allocator traffic.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "channel_golden_cases.hpp"
#include "util/alloc_count.hpp"

namespace mobiwlan {
namespace {

using goldencase::kNumCases;

struct BatchFixture : ::testing::Test {
  void SetUp() override {
    ASSERT_TRUE(alloc_hook_active())
        << "counting allocator not linked; test would vacuously pass";
    for (std::size_t idx = 0; idx < kNumCases; ++idx) {
      links.push_back(goldencase::make_golden_channel(idx));
      batch.add_link(links.back().get());
    }
  }

  std::vector<std::unique_ptr<WirelessChannel>> links;
  ChannelBatch batch;
  ChannelBatch::Scratch scratch;
};

TEST_F(BatchFixture, SampleRangeSteadyStateIsAllocationFree) {
  std::vector<ChannelSample> out(kNumCases);
  double t = 0.0;
  for (int pass = 0; pass < 3; ++pass) {  // grow scratch + out CSI matrices
    batch.sample_range(t, 0, kNumCases, out.data(), scratch);
    t += 0.001;
  }
  const std::uint64_t before = alloc_count();
  for (int pass = 0; pass < 32; ++pass) {
    batch.sample_range(t, 0, kNumCases, out.data(), scratch);
    t += 0.001;
  }
  EXPECT_EQ(alloc_count() - before, 0u);
}

TEST_F(BatchFixture, SingleLinkCsiSteadyStateIsAllocationFree) {
  CsiMatrix meas;
  CsiMatrix truth;
  double t = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    batch.csi_into(pass % kNumCases, t, meas, scratch);
    batch.csi_true_into(pass % kNumCases, t, truth, scratch);
    t += 0.001;
  }
  const std::uint64_t before = alloc_count();
  for (int pass = 0; pass < 32; ++pass) {
    batch.csi_into(pass % kNumCases, t, meas, scratch);
    batch.csi_true_into(pass % kNumCases, t, truth, scratch);
    t += 0.001;
  }
  EXPECT_EQ(alloc_count() - before, 0u);
}

TEST_F(BatchFixture, SweepAndScanSteadyStateAreAllocationFree) {
  std::vector<double> sweep(kNumCases);
  double t = 0.0;
  for (int pass = 0; pass < 3; ++pass) {
    batch.tof_all(t, sweep.data());
    (void)batch.strongest_link(t, scratch);
    t += 0.001;
  }
  const std::uint64_t before = alloc_count();
  for (int pass = 0; pass < 32; ++pass) {
    batch.tof_all(t, sweep.data());
    (void)batch.strongest_link(t, scratch);
    t += 0.001;
  }
  EXPECT_EQ(alloc_count() - before, 0u);
}

}  // namespace
}  // namespace mobiwlan
