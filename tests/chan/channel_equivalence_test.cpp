// Golden equivalence: the single-pass, scratch-buffer channel implementation
// must reproduce the pre-refactor implementation's values to 1e-12 across one
// channel per (mobility class x environmental activity) cell. The fixtures
// were captured from the original multi-pass code (commit afc9ea0) over the
// exact realizations built by make_golden_channel(); the noisy sample()
// snapshots additionally pin the RNG draw order (CSI noise, then RSSI jitter,
// then ToF jitter).
#include <complex>

#include <gtest/gtest.h>

#include "channel_golden_cases.hpp"
#include "phy/csi.hpp"

namespace mobiwlan {
namespace {

constexpr std::size_t kEntries = 312;  // 3 tx * 2 rx * 52 sc
constexpr std::size_t kProbes = 16;
constexpr double kSampleTimes[3] = {0.1, 0.6, 1.1};
constexpr double kTrueTime = 2.0;
constexpr double kTol = 1e-12;

struct GoldenFixture {
  double csi_true_re[kEntries];
  double csi_true_im[kEntries];
  double rssi[3];
  double snr[3];
  double tof[3];
  double dist[3];
  double sum_re[3];
  double sum_im[3];
  double mpow[3];
  double probe_re[3][kProbes];
  double probe_im[3][kProbes];
};

#include "channel_golden_fixtures.inc"

class ChannelEquivalence : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ChannelEquivalence, MatchesPreRefactorFixture) {
  const std::size_t idx = GetParam();
  SCOPED_TRACE(goldencase::case_name(idx));
  const GoldenFixture& fx = kGoldenFixtures[idx];
  auto ch = goldencase::make_golden_channel(idx);

  // Noiseless synthesis at a time none of the noisy samples use (csi_true
  // draws nothing, so evaluation order vs sample() is irrelevant).
  const CsiMatrix truth = ch->csi_true(kTrueTime);
  ASSERT_EQ(truth.raw().size(), kEntries);
  for (std::size_t i = 0; i < kEntries; ++i) {
    EXPECT_NEAR(truth.raw()[i].real(), fx.csi_true_re[i], kTol) << "entry " << i;
    EXPECT_NEAR(truth.raw()[i].imag(), fx.csi_true_im[i], kTol) << "entry " << i;
  }

  // Three sequential noisy samples: every field and the CSI noise must match,
  // which requires both the synthesis values and the draw order to be intact.
  for (int k = 0; k < 3; ++k) {
    SCOPED_TRACE(::testing::Message() << "sample " << k);
    const ChannelSample s = ch->sample(kSampleTimes[k]);
    EXPECT_NEAR(s.rssi_dbm, fx.rssi[k], kTol);
    EXPECT_NEAR(s.snr_db, fx.snr[k], kTol);
    EXPECT_NEAR(s.tof_cycles, fx.tof[k], kTol);
    EXPECT_NEAR(s.true_distance_m, fx.dist[k], kTol);
    std::complex<double> sum{};
    for (const auto& v : s.csi.raw()) sum += v;
    EXPECT_NEAR(sum.real(), fx.sum_re[k], kTol);
    EXPECT_NEAR(sum.imag(), fx.sum_im[k], kTol);
    EXPECT_NEAR(s.csi.mean_power(), fx.mpow[k], kTol);
    for (std::size_t p = 0; p < kProbes; ++p) {
      const auto v = s.csi.raw()[p * (kEntries / kProbes)];
      EXPECT_NEAR(v.real(), fx.probe_re[k][p], kTol) << "probe " << p;
      EXPECT_NEAR(v.imag(), fx.probe_im[k][p], kTol) << "probe " << p;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllCases, ChannelEquivalence,
                         ::testing::Range<std::size_t>(0, goldencase::kNumCases),
                         [](const auto& param_info) {
                           std::string n = goldencase::case_name(param_info.param);
                           for (char& c : n)
                             if (c == '/') c = '_';
                           return n;
                         });

// The scratch-buffer API must agree with the allocating wrappers on the same
// channel realization (same seed), not just with the historical fixtures.
TEST(ChannelEquivalence, ScratchApiMatchesWrappers) {
  auto a = goldencase::make_golden_channel(7);
  auto b = goldencase::make_golden_channel(7);
  WirelessChannel::PathScratch scratch;
  ChannelSample s_into;
  for (int k = 0; k < 5; ++k) {
    const double t = 0.3 * k;
    const ChannelSample s = a->sample(t);
    b->sample_into(t, s_into, scratch);
    EXPECT_EQ(s.rssi_dbm, s_into.rssi_dbm);
    EXPECT_EQ(s.tof_cycles, s_into.tof_cycles);
    EXPECT_EQ(s.snr_db, s_into.snr_db);
    ASSERT_EQ(s.csi.raw().size(), s_into.csi.raw().size());
    for (std::size_t i = 0; i < s.csi.raw().size(); ++i)
      EXPECT_EQ(s.csi.raw()[i], s_into.csi.raw()[i]) << "entry " << i;
  }
}

}  // namespace
}  // namespace mobiwlan
