// channel_golden_cases.hpp — the fixed channel realizations behind the golden
// equivalence fixtures (channel_golden_fixtures.inc).
//
// The single-pass sample()/synthesize() refactor must be numerically
// equivalent (<= 1e-12) to the original multi-pass implementation. These
// cases pin down one channel per (mobility class x environmental activity)
// cell; the fixtures were captured by running the PRE-refactor implementation
// over exactly these channels (tools/capture of PR 2 — see DESIGN.md,
// "Performance"). Do not change the construction order of RNG draws here:
// the fixtures encode it.
#pragma once

#include <cstddef>
#include <memory>

#include "chan/channel.hpp"
#include "chan/trajectory.hpp"
#include "util/rng.hpp"

namespace mobiwlan::goldencase {

inline constexpr std::size_t kNumCases = 8;

inline const char* case_name(std::size_t idx) {
  static const char* names[kNumCases] = {
      "static/weak",        "static/strong",        //
      "environmental/weak", "environmental/strong",  //
      "micro/weak",         "micro/strong",          //
      "macro/weak",         "macro/strong",
  };
  return names[idx];
}

/// Case idx in [0, 8): mobility class = idx / 2 (static, environmental,
/// micro, macro), activity = weak for even idx, strong for odd.
inline std::unique_ptr<WirelessChannel> make_golden_channel(std::size_t idx) {
  Rng master(20140204);  // kMasterSeed: one fixed "location" per case
  Rng rng = master.stream(1000 + idx);

  ChannelConfig cfg;
  cfg.activity = (idx % 2 == 0) ? EnvironmentalActivity::kWeak
                                : EnvironmentalActivity::kStrong;

  std::shared_ptr<const Trajectory> traj;
  switch (idx / 2) {
    case 0:
      traj = std::make_shared<StaticTrajectory>(Vec2{12.0, 5.0});
      break;
    case 1:
      // Environmental = static client; the activity level supplies the motion.
      traj = std::make_shared<StaticTrajectory>(Vec2{14.0, -3.0});
      break;
    case 2:
      traj = std::make_shared<MicroTrajectory>(Vec2{10.0, 2.0}, rng, 0.5);
      break;
    default:
      traj = std::make_shared<LinearTrajectory>(Vec2{9.0, 0.0}, Vec2{1.0, 0.4},
                                                1.2);
      break;
  }
  return std::make_unique<WirelessChannel>(cfg, Vec2{0.0, 0.0},
                                           std::move(traj), rng.split());
}

}  // namespace mobiwlan::goldencase
