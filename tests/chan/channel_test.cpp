// Tests for the geometric multipath channel — the testbed substitute.
// These verify the physical mechanisms the classifier relies on, not just
// API behaviour.
#include "chan/channel.hpp"

#include <gtest/gtest.h>

#include "core/csi_similarity.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace mobiwlan {
namespace {

WirelessChannel make_static_channel(double distance_m, Rng& rng,
                                    ChannelConfig config = {}) {
  auto traj = std::make_shared<StaticTrajectory>(Vec2{distance_m, 0.0});
  return WirelessChannel(config, Vec2{0.0, 0.0}, traj, rng.split());
}

TEST(ChannelTest, CsiDimensionsMatchConfig) {
  Rng rng(1);
  auto ch = make_static_channel(10.0, rng);
  const CsiMatrix csi = ch.csi_at(0.0);
  EXPECT_EQ(csi.n_tx(), 3u);
  EXPECT_EQ(csi.n_rx(), 2u);
  EXPECT_EQ(csi.n_subcarriers(), kDefaultSubcarriers);
}

TEST(ChannelTest, SnrDecreasesWithDistance) {
  // Average over scatterer realizations: shadowing makes single draws noisy.
  Rng rng(2);
  double snr_near = 0.0;
  double snr_far = 0.0;
  for (int i = 0; i < 10; ++i) {
    snr_near += make_static_channel(8.0, rng).snr_db(0.0);
    snr_far += make_static_channel(30.0, rng).snr_db(0.0);
  }
  EXPECT_GT(snr_near / 10.0, snr_far / 10.0 + 8.0);
}

TEST(ChannelTest, TrueDistanceMatchesGeometry) {
  Rng rng(3);
  auto ch = make_static_channel(17.0, rng);
  EXPECT_DOUBLE_EQ(ch.true_distance(5.0), 17.0);
}

TEST(ChannelTest, RssiQuantized) {
  Rng rng(4);
  ChannelConfig cfg;
  auto ch = make_static_channel(12.0, rng, cfg);
  for (double t = 0.0; t < 1.0; t += 0.1) {
    const double rssi = ch.rssi_dbm(t);
    const double q = rssi / cfg.rssi_quantum_db;
    EXPECT_NEAR(q, std::round(q), 1e-9);
  }
}

TEST(ChannelTest, RssiTracksSnr) {
  Rng rng(5);
  auto ch = make_static_channel(15.0, rng);
  // RSSI - noise floor should be within a few dB of the reported SNR.
  const double noise_floor = kThermalNoiseDbmPerHz +
                             10.0 * std::log10(ch.config().bandwidth_hz) +
                             ch.config().noise_figure_db;
  EXPECT_NEAR(ch.rssi_dbm(0.0) - noise_floor, ch.snr_db(0.0), 3.0);
}

TEST(ChannelTest, StaticChannelIsStable) {
  // The core premise: nothing moves -> consecutive CSI is nearly identical.
  Rng rng(6);
  for (int trial = 0; trial < 5; ++trial) {
    auto ch = make_static_channel(10.0 + 4.0 * trial, rng);
    const CsiMatrix a = ch.csi_at(0.0);
    const CsiMatrix b = ch.csi_at(0.5);
    EXPECT_GT(csi_similarity(a, b), 0.97) << "trial " << trial;
  }
}

TEST(ChannelTest, DeviceMotionDecorrelates) {
  // A client displaced by several wavelengths has a different ripple pattern.
  Rng rng(7);
  auto traj = std::make_shared<LinearTrajectory>(Vec2{10.0, 0.0}, Vec2{0.0, 1.0}, 1.2);
  WirelessChannel ch(ChannelConfig{}, Vec2{0.0, 0.0}, traj, rng.split());
  const CsiMatrix a = ch.csi_at(0.0);
  const CsiMatrix b = ch.csi_at(0.5);  // moved 0.6 m ~ 11 wavelengths
  EXPECT_LT(csi_similarity(a, b), 0.7);
}

TEST(ChannelTest, EnvironmentalMotionPartiallyDecorrelates) {
  // People moving perturb only their own paths: similarity falls between the
  // static and device-mobility regimes.
  Rng rng(8);
  ChannelConfig cfg;
  cfg.activity = EnvironmentalActivity::kStrong;
  SampleSet sims;
  for (int trial = 0; trial < 8; ++trial) {
    auto ch = make_static_channel(12.0, rng, cfg);
    const CsiMatrix a = ch.csi_at(0.0);
    const CsiMatrix b = ch.csi_at(0.5);
    sims.add(csi_similarity(a, b));
  }
  EXPECT_GT(sims.median(), 0.3);
  EXPECT_LT(sims.median(), 0.99);
}

TEST(ChannelTest, WeakActivityMilderThanStrong) {
  Rng rng(9);
  ChannelConfig weak_cfg;
  weak_cfg.activity = EnvironmentalActivity::kWeak;
  ChannelConfig strong_cfg;
  strong_cfg.activity = EnvironmentalActivity::kStrong;
  double weak_sum = 0.0;
  double strong_sum = 0.0;
  const int trials = 20;
  for (int trial = 0; trial < trials; ++trial) {
    auto wch = make_static_channel(12.0, rng, weak_cfg);
    weak_sum += csi_similarity(wch.csi_at(0.0), wch.csi_at(0.5));
    auto sch = make_static_channel(12.0, rng, strong_cfg);
    strong_sum += csi_similarity(sch.csi_at(0.0), sch.csi_at(0.5));
  }
  EXPECT_GT(weak_sum / trials, strong_sum / trials);
}

TEST(ChannelTest, EnvironmentalBlockageRaisesRssiVariance) {
  // Fig. 1's mechanism: people crossing the LOS gate total power, so a
  // static client in a busy environment sees RSSI swings a quiet one never
  // does.
  Rng rng(30);
  ChannelConfig quiet;
  ChannelConfig busy;
  busy.activity = EnvironmentalActivity::kStrong;
  double quiet_std = 0.0;
  double busy_std = 0.0;
  const int trials = 8;
  for (int trial = 0; trial < trials; ++trial) {
    auto qch = make_static_channel(12.0, rng, quiet);
    auto bch = make_static_channel(12.0, rng, busy);
    std::vector<double> q;
    std::vector<double> b;
    for (double t = 0.0; t < 20.0; t += 0.1) {
      q.push_back(qch.rssi_dbm(t));
      b.push_back(bch.rssi_dbm(t));
    }
    quiet_std += stddev_of(q);
    busy_std += stddev_of(b);
  }
  EXPECT_GT(busy_std / trials, 2.0 * (quiet_std / trials));
}

TEST(ChannelTest, BlockagePulsesAreIntermittent) {
  // The LOS blockage is pulsed, not constant: power dips below the quiet
  // level periodically but recovers.
  Rng rng(31);
  ChannelConfig busy;
  busy.activity = EnvironmentalActivity::kStrong;
  auto ch = make_static_channel(12.0, rng, busy);
  SampleSet snr;
  for (double t = 0.0; t < 30.0; t += 0.1) snr.add(ch.snr_db(t));
  // A meaningful spread between the best and worst deciles.
  EXPECT_GT(snr.quantile(0.9) - snr.quantile(0.1), 2.0);
}

TEST(ChannelTest, TofTracksDistance) {
  Rng rng(10);
  ChannelConfig cfg;
  auto near = make_static_channel(5.0, rng, cfg);
  auto far = make_static_channel(30.0, rng, cfg);
  // Average many noisy readings; expected difference = 2*25m/c * clock.
  double near_sum = 0.0;
  double far_sum = 0.0;
  const int n = 500;
  for (int i = 0; i < n; ++i) {
    near_sum += near.tof_cycles(i * 0.02);
    far_sum += far.tof_cycles(i * 0.02);
  }
  const double expected_delta =
      2.0 * 25.0 / kSpeedOfLight * cfg.tof_clock_hz;
  EXPECT_NEAR((far_sum - near_sum) / n, expected_delta, 1.0);
}

TEST(ChannelTest, TofIsIntegerCycles) {
  Rng rng(11);
  auto ch = make_static_channel(10.0, rng);
  for (int i = 0; i < 20; ++i) {
    const double v = ch.tof_cycles(i * 0.02);
    EXPECT_DOUBLE_EQ(v, std::round(v));
  }
}

TEST(ChannelTest, TofNoisyPerReading) {
  Rng rng(12);
  auto ch = make_static_channel(15.0, rng);
  OnlineStats s;
  for (int i = 0; i < 400; ++i) s.add(ch.tof_cycles(i * 0.02));
  // Configured 12 ns jitter at 88 MHz ~ 1.06 cycles (plus quantization).
  EXPECT_GT(s.stddev(), 0.5);
  EXPECT_LT(s.stddev(), 2.5);
}

TEST(ChannelTest, RadialVelocitySign) {
  Rng rng(13);
  auto away = std::make_shared<LinearTrajectory>(Vec2{10.0, 0.0}, Vec2{1.0, 0.0}, 1.2);
  WirelessChannel ch_away(ChannelConfig{}, Vec2{0.0, 0.0}, away, rng.split());
  EXPECT_GT(ch_away.radial_velocity(1.0), 1.0);

  auto toward =
      std::make_shared<LinearTrajectory>(Vec2{10.0, 0.0}, Vec2{-1.0, 0.0}, 1.2);
  WirelessChannel ch_toward(ChannelConfig{}, Vec2{0.0, 0.0}, toward, rng.split());
  EXPECT_LT(ch_toward.radial_velocity(1.0), -1.0);
}

TEST(ChannelTest, ShadowConstantForStaticClient) {
  Rng rng(14);
  auto ch = make_static_channel(12.0, rng);
  const double s0 = ch.shadow_db_at(0.0);
  for (double t : {1.0, 10.0, 100.0}) EXPECT_DOUBLE_EQ(ch.shadow_db_at(t), s0);
}

TEST(ChannelTest, ShadowVariesForWalkingClient) {
  Rng rng(15);
  auto traj = std::make_shared<LinearTrajectory>(Vec2{8.0, 0.0}, Vec2{1.0, 0.3}, 1.2);
  WirelessChannel ch(ChannelConfig{}, Vec2{0.0, 0.0}, traj, rng.split());
  OnlineStats s;
  for (double t = 0.0; t < 20.0; t += 0.1) s.add(ch.shadow_db_at(t));
  EXPECT_GT(s.stddev(), 1.0);
}

TEST(ChannelTest, ShadowZeroWhenDisabled) {
  Rng rng(16);
  ChannelConfig cfg;
  cfg.shadow_sigma_db = 0.0;
  auto ch = make_static_channel(12.0, rng, cfg);
  EXPECT_DOUBLE_EQ(ch.shadow_db_at(3.0), 0.0);
}

TEST(ChannelTest, DeterministicGivenSeed) {
  ChannelConfig cfg;
  auto make = [&](std::uint64_t seed) {
    Rng rng(seed);
    auto traj = std::make_shared<StaticTrajectory>(Vec2{11.0, 3.0});
    return WirelessChannel(cfg, Vec2{0.0, 0.0}, traj, rng.split());
  };
  auto a = make(99);
  auto b = make(99);
  EXPECT_DOUBLE_EQ(a.snr_db(1.0), b.snr_db(1.0));
  const CsiMatrix ca = a.csi_at(1.0);
  const CsiMatrix cb = b.csi_at(1.0);
  for (std::size_t i = 0; i < ca.raw().size(); ++i)
    EXPECT_EQ(ca.raw()[i], cb.raw()[i]);
}

TEST(ChannelTest, CsiTrueIsNoiseless) {
  Rng rng(17);
  auto ch = make_static_channel(12.0, rng);
  const CsiMatrix a = ch.csi_true(0.3);
  const CsiMatrix b = ch.csi_true(0.3);
  for (std::size_t i = 0; i < a.raw().size(); ++i) EXPECT_EQ(a.raw()[i], b.raw()[i]);
  EXPECT_NEAR(complex_correlation(a, ch.csi_true(0.5)), 1.0, 1e-9);
}

TEST(ChannelTest, MeasuredCsiCloseToTrueAtHighSnr) {
  Rng rng(18);
  auto ch = make_static_channel(8.0, rng);
  EXPECT_GT(complex_correlation(ch.csi_true(0.0), ch.csi_at(0.0)), 0.99);
}

TEST(ChannelTest, FullSampleBundlesAllFields) {
  Rng rng(19);
  auto ch = make_static_channel(14.0, rng);
  const ChannelSample s = ch.sample(2.0);
  EXPECT_DOUBLE_EQ(s.t, 2.0);
  EXPECT_FALSE(s.csi.empty());
  EXPECT_DOUBLE_EQ(s.true_distance_m, 14.0);
  EXPECT_GT(s.tof_cycles, 0.0);
  EXPECT_LT(s.rssi_dbm, 0.0);
}

class DistanceSweep : public ::testing::TestWithParam<double> {};

TEST_P(DistanceSweep, StaticSimilarityHighAtUsableRange) {
  Rng rng(static_cast<std::uint64_t>(GetParam() * 100));
  double total = 0.0;
  const int trials = 6;
  for (int trial = 0; trial < trials; ++trial) {
    auto ch = make_static_channel(GetParam(), rng);
    total += csi_similarity(ch.csi_at(0.0), ch.csi_at(0.5));
  }
  EXPECT_GT(total / trials, 0.95) << "distance " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Distances, DistanceSweep,
                         ::testing::Values(6.0, 10.0, 15.0, 20.0, 25.0));

}  // namespace
}  // namespace mobiwlan
