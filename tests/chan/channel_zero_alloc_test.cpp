// Zero-allocation contract: once scratch buffers are warm, the steady-state
// hot loops — sample_into / csi_at_into / csi_true_into and the classifier's
// per-packet on_csi step — must not touch the heap. This binary links the
// counting operator-new hook (mobiwlan_alloc_hook), so any allocation on
// those paths shows up as a nonzero alloc_count() delta.
#include <gtest/gtest.h>

#include "channel_golden_cases.hpp"
#include "core/mobility_classifier.hpp"
#include "util/alloc_count.hpp"

namespace mobiwlan {
namespace {

TEST(ZeroAlloc, HookIsLinked) { EXPECT_TRUE(alloc_hook_active()); }

TEST(ZeroAlloc, SampleIntoSteadyState) {
  auto ch = goldencase::make_golden_channel(7);  // macro/strong: all paths hot
  WirelessChannel::PathScratch scratch;
  ChannelSample s;
  double t = 0.0;
  // Warmup sizes every buffer (CSI matrix, scratch planes, path vector).
  for (int i = 0; i < 8; ++i) {
    ch->sample_into(t, s, scratch);
    t += 0.02;
  }
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 500; ++i) {
    ch->sample_into(t, s, scratch);
    t += 0.02;
  }
  EXPECT_EQ(alloc_count() - before, 0u);
}

TEST(ZeroAlloc, CsiIntoSteadyState) {
  auto ch = goldencase::make_golden_channel(5);
  WirelessChannel::PathScratch scratch;
  CsiMatrix noisy, truth;
  double t = 0.0;
  for (int i = 0; i < 8; ++i) {
    ch->csi_at_into(t, noisy, scratch);
    ch->csi_true_into(t, truth, scratch);
    t += 0.02;
  }
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 500; ++i) {
    ch->csi_at_into(t, noisy, scratch);
    ch->csi_true_into(t, truth, scratch);
    t += 0.02;
  }
  EXPECT_EQ(alloc_count() - before, 0u);
}

TEST(ZeroAlloc, ClassifierCsiAndTofSteadyState) {
  auto ch = goldencase::make_golden_channel(7);
  MobilityClassifier clf;
  WirelessChannel::PathScratch scratch;
  CsiMatrix csi;
  double t = 0.0;
  // Warm up past the similarity window and the ToF tracker's buffers.
  for (int i = 0; i < 400; ++i) {
    ch->csi_at_into(t, csi, scratch);
    clf.on_csi(t, csi);
    clf.on_tof(t, ch->tof_cycles(t));
    t += 0.02;
  }
  const std::uint64_t before = alloc_count();
  for (int i = 0; i < 1000; ++i) {
    ch->csi_at_into(t, csi, scratch);
    clf.on_csi(t, csi);
    clf.on_tof(t, ch->tof_cycles(t));
    t += 0.02;
  }
  EXPECT_EQ(alloc_count() - before, 0u);
}

}  // namespace
}  // namespace mobiwlan
