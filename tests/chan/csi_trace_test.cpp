// Tests for CSI trace recording, lookup and binary persistence.
#include "chan/csi_trace.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "chan/scenario.hpp"
#include "trace/trace_io.hpp"

namespace mobiwlan {
namespace {

CsiTrace small_trace() {
  Rng rng(1);
  Scenario s = make_scenario(MobilityClass::kMicro, rng);
  return CsiTrace::record(*s.channel, 1.0, 0.1);
}

TEST(CsiTraceTest, RecordProducesExpectedCount) {
  const CsiTrace t = small_trace();
  EXPECT_EQ(t.size(), 11u);  // 0.0 .. 1.0 inclusive at 0.1
  EXPECT_NEAR(t.duration(), 1.0, 1e-9);
}

TEST(CsiTraceTest, EntriesTimeOrdered) {
  const CsiTrace t = small_trace();
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GT(t[i].t, t[i - 1].t);
}

TEST(CsiTraceTest, AtTimeClampsAndSelects) {
  const CsiTrace t = small_trace();
  EXPECT_DOUBLE_EQ(t.at_time(-1.0).t, 0.0);
  EXPECT_DOUBLE_EQ(t.at_time(0.55).t, 0.5);
  EXPECT_DOUBLE_EQ(t.at_time(99.0).t, 1.0);
  EXPECT_EQ(t.index_at(0.0), 0u);
}

TEST(CsiTraceTest, AtTimeExactBoundary) {
  const CsiTrace t = small_trace();
  EXPECT_DOUBLE_EQ(t.at_time(0.5).t, 0.5);
}

TEST(CsiTraceTest, EmptyTraceThrowsOnLookup) {
  CsiTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_THROW(t.at_time(0.0), std::out_of_range);
}

TEST(CsiTraceTest, SaveLoadRoundTrip) {
  const CsiTrace t = small_trace();
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.bin";
  ASSERT_TRUE(t.save(path));
  const CsiTrace loaded = CsiTrace::load(path);
  ASSERT_EQ(loaded.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].t, t[i].t);
    EXPECT_DOUBLE_EQ(loaded[i].snr_db, t[i].snr_db);
    EXPECT_DOUBLE_EQ(loaded[i].rssi_dbm, t[i].rssi_dbm);
    EXPECT_DOUBLE_EQ(loaded[i].tof_cycles, t[i].tof_cycles);
    ASSERT_EQ(loaded[i].csi.raw().size(), t[i].csi.raw().size());
    for (std::size_t j = 0; j < t[i].csi.raw().size(); ++j)
      EXPECT_EQ(loaded[i].csi.raw()[j], t[i].csi.raw()[j]);
  }
  std::remove(path.c_str());
}

TEST(CsiTraceTest, LoadMissingFileThrows) {
  EXPECT_THROW(CsiTrace::load("/nonexistent/path/trace.bin"), std::runtime_error);
}

TEST(CsiTraceTest, LoadGarbageThrows) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  EXPECT_THROW(CsiTrace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

// ---- typed rejection of malformed files ------------------------------------
//
// CsiTrace::load persists through the MWTR v2 format, so every malformed
// input raises a trace::TraceError whose code states the reason. These pin
// the code (not just "it threw") per failure class.

trace::TraceError::Code load_code(const std::string& path) {
  try {
    (void)CsiTrace::load(path);
  } catch (const trace::TraceError& e) {
    return e.code();
  }
  ADD_FAILURE() << path << " was accepted";
  return trace::TraceError::Code::kOpenFailed;
}

void append_u32(std::vector<unsigned char>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back((v >> (8 * i)) & 0xFF);
}

void append_f64(std::vector<unsigned char>& b, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) b.push_back((bits >> (8 * i)) & 0xFF);
}

void append_record(std::vector<unsigned char>& b, trace::StreamKind kind,
                   double t, const std::vector<double>& payload) {
  b.push_back(static_cast<unsigned char>(kind));
  b.push_back(0);  // flags
  b.push_back(0);  // unit lo
  b.push_back(0);  // unit hi
  append_f64(b, t);
  for (const double v : payload) append_f64(b, v);
}

void write_file(const std::string& path, const std::vector<unsigned char>& b) {
  std::ofstream f(path, std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
}

// The full CsiTrace stream set on a 1x1x1 geometry.
std::uint32_t csi_trace_mask() {
  using trace::StreamKind;
  return trace::stream_bit(StreamKind::kCsi) |
         trace::stream_bit(StreamKind::kSnr) |
         trace::stream_bit(StreamKind::kRssi) |
         trace::stream_bit(StreamKind::kTof) |
         trace::stream_bit(StreamKind::kTrueDistance);
}

void append_header(std::vector<unsigned char>& b, std::uint32_t version) {
  append_u32(b, trace::kMagic);
  append_u32(b, version);
  append_u32(b, csi_trace_mask());
  append_u32(b, 1);  // n_units
  append_u32(b, 1);  // n_tx
  append_u32(b, 1);  // n_rx
  append_u32(b, 1);  // n_sc
  append_u32(b, 0);  // reserved
  append_f64(b, 0.0);
  append_f64(b, 0.0);
}

/// One full CsiTrace entry at time t (kCsi then the four scalars).
void append_entry(std::vector<unsigned char>& b, double t) {
  using trace::StreamKind;
  append_record(b, StreamKind::kCsi, t, {1.0, 0.0});  // one (re, im) value
  append_record(b, StreamKind::kSnr, t, {20.0});
  append_record(b, StreamKind::kRssi, t, {-55.0});
  append_record(b, StreamKind::kTof, t, {400.0});
  append_record(b, StreamKind::kTrueDistance, t, {3.0});
}

TEST(CsiTraceTest, LoadGarbageIsBadMagic) {
  const std::string path = ::testing::TempDir() + "/ct_badmagic.bin";
  {
    std::ofstream f(path, std::ios::binary);
    f << "definitely not a recorded trace";
  }
  EXPECT_EQ(load_code(path), trace::TraceError::Code::kBadMagic);
  std::remove(path.c_str());
}

TEST(CsiTraceTest, LoadLegacyV1IsBadVersion) {
  const std::string path = ::testing::TempDir() + "/ct_legacy.bin";
  std::vector<unsigned char> b;
  append_u32(b, 0x43534954u);  // the legacy "CSIT" magic
  append_u32(b, 1);
  append_u32(b, 0);
  write_file(path, b);
  EXPECT_EQ(load_code(path), trace::TraceError::Code::kBadVersion);
  std::remove(path.c_str());
}

TEST(CsiTraceTest, LoadUnknownVersionIsBadVersion) {
  const std::string path = ::testing::TempDir() + "/ct_badversion.bin";
  std::vector<unsigned char> b;
  append_header(b, trace::kFormatVersion + 7);
  write_file(path, b);
  EXPECT_EQ(load_code(path), trace::TraceError::Code::kBadVersion);
  std::remove(path.c_str());
}

TEST(CsiTraceTest, LoadTruncatedIsTruncated) {
  const std::string path = ::testing::TempDir() + "/ct_truncated.bin";
  const CsiTrace t = small_trace();
  ASSERT_TRUE(t.save(path));
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 100u);
  bytes.resize(bytes.size() - 11);  // EOF lands inside the last chunk
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(load_code(path), trace::TraceError::Code::kTruncated);
  std::remove(path.c_str());
}

TEST(CsiTraceTest, LoadNonMonotoneTimestampsRejected) {
  const std::string path = ::testing::TempDir() + "/ct_nonmono.bin";
  std::vector<unsigned char> b;
  append_header(b, trace::kFormatVersion);
  std::vector<unsigned char> records;
  append_entry(records, 1.0);
  append_entry(records, 0.5);  // time regresses on every stream
  append_u32(b, 10);           // record_count (2 entries x 5 records)
  append_u32(b, static_cast<std::uint32_t>(records.size()));
  b.insert(b.end(), records.begin(), records.end());
  write_file(path, b);
  EXPECT_EQ(load_code(path), trace::TraceError::Code::kNonMonotoneTime);
  std::remove(path.c_str());
}

TEST(CsiTraceTest, LoadRefusesTraceWithoutCsiTraceStreams) {
  // A valid v2 trace that lacks the CsiTrace stream set (here: RSSI only)
  // must be refused up front as missing-stream, not mis-parsed.
  const std::string path = ::testing::TempDir() + "/ct_wrongset.bin";
  {
    trace::TraceHeader h;
    h.stream_mask = trace::stream_bit(trace::StreamKind::kRssi);
    h.n_tx = 1;
    h.n_rx = 1;
    h.n_sc = 1;
    trace::TraceWriter writer(path, h);
    writer.put_scalar(trace::StreamKind::kRssi, 0, 0.0, -50.0);
    writer.close();
  }
  EXPECT_EQ(load_code(path), trace::TraceError::Code::kMissingStream);
  std::remove(path.c_str());
}

// ---- at_time / index_at boundary pins --------------------------------------
//
// The MU-MIMO emulator's latest-entry-at-or-before-t lookup. Pinned so the
// replay semantics can never drift silently: exact hits select that entry,
// queries before the first entry clamp to index 0, queries past the end
// clamp to the last entry, and epsilon perturbations round down.

TEST(CsiTraceTest, IndexAtBoundaryPins) {
  const CsiTrace t = small_trace();  // entries at 0.0, 0.1, ..., 1.0
  EXPECT_EQ(t.index_at(-5.0), 0u);             // before start: clamp to first
  EXPECT_EQ(t.index_at(0.0), 0u);              // exact first
  EXPECT_EQ(t.index_at(0.1), 1u);              // exact interior hit
  EXPECT_EQ(t.index_at(1.0), t.size() - 1);    // exact last
  EXPECT_EQ(t.index_at(99.0), t.size() - 1);   // past the end: clamp to last
}

TEST(CsiTraceTest, IndexAtEpsilonPerturbationsRoundDown) {
  const CsiTrace t = small_trace();
  const std::size_t at_exact = t.index_at(0.5);
  EXPECT_EQ(t.index_at(0.5 + 1e-12), at_exact);      // just after: same entry
  EXPECT_EQ(t.index_at(0.5 - 1e-12), at_exact - 1);  // just before: previous
  EXPECT_DOUBLE_EQ(t.at_time(0.5 - 1e-12).t, 0.4);
}

TEST(CsiTraceTest, AtTimeAndIndexAtAgree) {
  const CsiTrace t = small_trace();
  for (const double q : {-1.0, 0.0, 0.05, 0.1, 0.55, 0.999, 1.0, 2.0})
    EXPECT_DOUBLE_EQ(t.at_time(q).t, t[t.index_at(q)].t) << "q=" << q;
}

TEST(CsiTraceTest, EmptyTraceRoundTrips) {
  CsiTrace t;
  const std::string path = ::testing::TempDir() + "/empty_trace.bin";
  ASSERT_TRUE(t.save(path));
  EXPECT_EQ(CsiTrace::load(path).size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mobiwlan
