// Tests for CSI trace recording, lookup and binary persistence.
#include "chan/csi_trace.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "chan/scenario.hpp"

namespace mobiwlan {
namespace {

CsiTrace small_trace() {
  Rng rng(1);
  Scenario s = make_scenario(MobilityClass::kMicro, rng);
  return CsiTrace::record(*s.channel, 1.0, 0.1);
}

TEST(CsiTraceTest, RecordProducesExpectedCount) {
  const CsiTrace t = small_trace();
  EXPECT_EQ(t.size(), 11u);  // 0.0 .. 1.0 inclusive at 0.1
  EXPECT_NEAR(t.duration(), 1.0, 1e-9);
}

TEST(CsiTraceTest, EntriesTimeOrdered) {
  const CsiTrace t = small_trace();
  for (std::size_t i = 1; i < t.size(); ++i) EXPECT_GT(t[i].t, t[i - 1].t);
}

TEST(CsiTraceTest, AtTimeClampsAndSelects) {
  const CsiTrace t = small_trace();
  EXPECT_DOUBLE_EQ(t.at_time(-1.0).t, 0.0);
  EXPECT_DOUBLE_EQ(t.at_time(0.55).t, 0.5);
  EXPECT_DOUBLE_EQ(t.at_time(99.0).t, 1.0);
  EXPECT_EQ(t.index_at(0.0), 0u);
}

TEST(CsiTraceTest, AtTimeExactBoundary) {
  const CsiTrace t = small_trace();
  EXPECT_DOUBLE_EQ(t.at_time(0.5).t, 0.5);
}

TEST(CsiTraceTest, EmptyTraceThrowsOnLookup) {
  CsiTrace t;
  EXPECT_TRUE(t.empty());
  EXPECT_THROW(t.at_time(0.0), std::out_of_range);
}

TEST(CsiTraceTest, SaveLoadRoundTrip) {
  const CsiTrace t = small_trace();
  const std::string path = ::testing::TempDir() + "/trace_roundtrip.bin";
  ASSERT_TRUE(t.save(path));
  const CsiTrace loaded = CsiTrace::load(path);
  ASSERT_EQ(loaded.size(), t.size());
  for (std::size_t i = 0; i < t.size(); ++i) {
    EXPECT_DOUBLE_EQ(loaded[i].t, t[i].t);
    EXPECT_DOUBLE_EQ(loaded[i].snr_db, t[i].snr_db);
    EXPECT_DOUBLE_EQ(loaded[i].rssi_dbm, t[i].rssi_dbm);
    EXPECT_DOUBLE_EQ(loaded[i].tof_cycles, t[i].tof_cycles);
    ASSERT_EQ(loaded[i].csi.raw().size(), t[i].csi.raw().size());
    for (std::size_t j = 0; j < t[i].csi.raw().size(); ++j)
      EXPECT_EQ(loaded[i].csi.raw()[j], t[i].csi.raw()[j]);
  }
  std::remove(path.c_str());
}

TEST(CsiTraceTest, LoadMissingFileThrows) {
  EXPECT_THROW(CsiTrace::load("/nonexistent/path/trace.bin"), std::runtime_error);
}

TEST(CsiTraceTest, LoadGarbageThrows) {
  const std::string path = ::testing::TempDir() + "/garbage.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr);
  std::fputs("not a trace", f);
  std::fclose(f);
  EXPECT_THROW(CsiTrace::load(path), std::runtime_error);
  std::remove(path.c_str());
}

TEST(CsiTraceTest, EmptyTraceRoundTrips) {
  CsiTrace t;
  const std::string path = ::testing::TempDir() + "/empty_trace.bin";
  ASSERT_TRUE(t.save(path));
  EXPECT_EQ(CsiTrace::load(path).size(), 0u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mobiwlan
