// Tests for 2-D geometry primitives.
#include "chan/geometry.hpp"

#include <gtest/gtest.h>

#include <numbers>

namespace mobiwlan {
namespace {

TEST(Vec2Test, Arithmetic) {
  const Vec2 a{1.0, 2.0};
  const Vec2 b{3.0, -1.0};
  const Vec2 sum = a + b;
  EXPECT_DOUBLE_EQ(sum.x, 4.0);
  EXPECT_DOUBLE_EQ(sum.y, 1.0);
  const Vec2 diff = a - b;
  EXPECT_DOUBLE_EQ(diff.x, -2.0);
  const Vec2 scaled = a * 2.0;
  EXPECT_DOUBLE_EQ(scaled.y, 4.0);
}

TEST(Vec2Test, NormAndDot) {
  const Vec2 v{3.0, 4.0};
  EXPECT_DOUBLE_EQ(v.norm(), 5.0);
  EXPECT_DOUBLE_EQ(v.dot({1.0, 1.0}), 7.0);
}

TEST(Vec2Test, NormalizedUnitLength) {
  const Vec2 v{3.0, 4.0};
  const Vec2 u = v.normalized();
  EXPECT_NEAR(u.norm(), 1.0, 1e-12);
  EXPECT_NEAR(u.x, 0.6, 1e-12);
}

TEST(Vec2Test, NormalizedZeroIsZero) {
  const Vec2 z = Vec2{}.normalized();
  EXPECT_DOUBLE_EQ(z.x, 0.0);
  EXPECT_DOUBLE_EQ(z.y, 0.0);
}

TEST(GeometryTest, Distance) {
  EXPECT_DOUBLE_EQ(distance({0.0, 0.0}, {3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(distance({1.0, 1.0}, {1.0, 1.0}), 0.0);
}

TEST(GeometryTest, UnitFromAngle) {
  const Vec2 east = unit_from_angle(0.0);
  EXPECT_NEAR(east.x, 1.0, 1e-12);
  EXPECT_NEAR(east.y, 0.0, 1e-12);
  const Vec2 north = unit_from_angle(std::numbers::pi / 2.0);
  EXPECT_NEAR(north.x, 0.0, 1e-12);
  EXPECT_NEAR(north.y, 1.0, 1e-12);
  EXPECT_NEAR(unit_from_angle(1.23).norm(), 1.0, 1e-12);
}

}  // namespace
}  // namespace mobiwlan
