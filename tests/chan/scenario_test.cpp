// Tests for the randomized "measurement location" scenario builders.
#include "chan/scenario.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

TEST(ScenarioTest, TruthMatchesRequestedClass) {
  Rng rng(1);
  for (auto cls : {MobilityClass::kStatic, MobilityClass::kEnvironmental,
                   MobilityClass::kMicro, MobilityClass::kMacro}) {
    const Scenario s = make_scenario(cls, rng);
    EXPECT_EQ(s.truth, cls);
    EXPECT_EQ(s.trajectory->mobility_class(), cls == MobilityClass::kEnvironmental
                                                  ? MobilityClass::kStatic
                                                  : cls);
  }
}

TEST(ScenarioTest, DistanceWithinConfiguredRange) {
  Rng rng(2);
  ScenarioOptions opt;
  opt.min_distance_m = 10.0;
  opt.max_distance_m = 20.0;
  opt.min_link_snr_db = -100.0;  // disable redraws so the range is exact
  for (int i = 0; i < 20; ++i) {
    const Scenario s = make_scenario(MobilityClass::kStatic, rng, opt);
    const double d = s.channel->true_distance(0.0);
    EXPECT_GE(d, 10.0 - 1e-9);
    EXPECT_LE(d, 20.0 + 1e-9);
  }
}

TEST(ScenarioTest, CoveredLocationsClearMinSnr) {
  Rng rng(3);
  ScenarioOptions opt;
  opt.min_link_snr_db = 15.0;
  int below = 0;
  for (int i = 0; i < 30; ++i) {
    const Scenario s = make_scenario(MobilityClass::kStatic, rng, opt);
    if (s.channel->snr_db(0.0) < 15.0) ++below;
  }
  // Redraws cap at 32 attempts, so an occasional miss is tolerated.
  EXPECT_LE(below, 1);
}

TEST(ScenarioTest, StaticTruthModeIsStatic) {
  Rng rng(4);
  const Scenario s = make_scenario(MobilityClass::kStatic, rng);
  EXPECT_EQ(s.truth_mode(3.0), MobilityMode::kStatic);
}

TEST(ScenarioTest, MacroTruthModeFollowsRadialVelocity) {
  Rng rng(5);
  const Scenario away = make_radial_scenario(false, 10.0, rng);
  EXPECT_EQ(away.truth_mode(2.0), MobilityMode::kMacroAway);
  const Scenario toward = make_radial_scenario(true, 30.0, rng);
  EXPECT_EQ(toward.truth_mode(2.0), MobilityMode::kMacroToward);
}

TEST(ScenarioTest, RadialScenarioChangesDistanceLinearly) {
  Rng rng(6);
  const Scenario s = make_radial_scenario(false, 10.0, rng);
  const double d0 = s.channel->true_distance(0.0);
  const double d5 = s.channel->true_distance(5.0);
  EXPECT_NEAR(d5 - d0, 5.0 * 1.2, 0.01);
}

TEST(ScenarioTest, BounceScenarioStaysWithinRadii) {
  Rng rng(7);
  const Scenario s = make_bounce_scenario(5.0, 15.0, rng);
  for (double t = 0.0; t < 40.0; t += 0.5) {
    const double d = s.channel->true_distance(t);
    EXPECT_GE(d, 5.0 - 1e-6);
    EXPECT_LE(d, 15.0 + 1e-6);
  }
}

TEST(ScenarioTest, CircularScenarioConstantDistance) {
  Rng rng(8);
  const Scenario s = make_circular_scenario(9.0, rng);
  for (double t = 0.0; t < 20.0; t += 1.0)
    EXPECT_NEAR(s.channel->true_distance(t), 9.0, 1e-6);
  EXPECT_EQ(s.truth, MobilityClass::kMacro);
}

TEST(ScenarioTest, EnvironmentalActivityLevelsDiffer) {
  Rng rng(9);
  const Scenario weak =
      make_environmental_scenario(EnvironmentalActivity::kWeak, rng);
  const Scenario strong =
      make_environmental_scenario(EnvironmentalActivity::kStrong, rng);
  EXPECT_EQ(weak.truth, MobilityClass::kEnvironmental);
  EXPECT_EQ(strong.truth, MobilityClass::kEnvironmental);
  EXPECT_EQ(weak.channel->config().activity, EnvironmentalActivity::kWeak);
  EXPECT_EQ(strong.channel->config().activity, EnvironmentalActivity::kStrong);
}

TEST(ScenarioTest, DifferentSeedsDifferentGeometry) {
  Rng rng(10);
  const Scenario a = make_scenario(MobilityClass::kStatic, rng);
  const Scenario b = make_scenario(MobilityClass::kStatic, rng);
  EXPECT_NE(a.channel->true_distance(0.0), b.channel->true_distance(0.0));
}

}  // namespace
}  // namespace mobiwlan
