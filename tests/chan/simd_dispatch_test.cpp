// SIMD dispatch override: the scalar and AVX2+FMA kernel variants must
// produce the same channels, and the MOBIWLAN_FORCE_SCALAR override must
// actually reach every dispatch site.
//
// Runs the golden channel realizations (the same eight the equivalence
// fixtures pin) once per variant through the full noisy pipeline —
// synthesis MAC (chan/channel.cpp) and Box-Muller noise fill (util/rng.cpp)
// both re-consult simd::use_avx2fma() per call, which is what this test
// leans on. On hosts without AVX2+FMA both runs take the scalar path and
// the comparison is trivially exact; ctest also registers the whole seed
// suite under MOBIWLAN_FORCE_SCALAR=1 (label tier2) so the scalar fallback
// stays green on AVX2 machines too.
#include "util/simd.hpp"

#include <cmath>
#include <cstdlib>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "chan/channel.hpp"
#include "channel_golden_cases.hpp"

namespace mobiwlan {
namespace {

/// Restores the dispatch override (and therefore env semantics) on exit.
struct ForceScalarGuard {
  explicit ForceScalarGuard(int forced) { simd::set_force_scalar(forced); }
  ~ForceScalarGuard() { simd::set_force_scalar(-1); }
};

/// Full noisy samples of one golden channel at 10 Hz over 3 s.
std::vector<ChannelSample> sample_channel(std::size_t case_idx) {
  auto channel = goldencase::make_golden_channel(case_idx);
  std::vector<ChannelSample> out;
  for (double t = 0.0; t < 3.0; t += 0.1) out.push_back(channel->sample(t));
  return out;
}

TEST(SimdDispatchTest, SetForceScalarOverridesDispatch) {
  {
    ForceScalarGuard guard(1);
    EXPECT_TRUE(simd::force_scalar());
    EXPECT_FALSE(simd::use_avx2fma());
  }
  {
    ForceScalarGuard guard(0);
    EXPECT_FALSE(simd::force_scalar());
    EXPECT_EQ(simd::use_avx2fma(), simd::avx2fma_supported());
  }
}

TEST(SimdDispatchTest, EnvVarForcesScalarWhenNoOverride) {
  // set_force_scalar(-1) defers to the environment, which ctest sets for
  // the env-forced registration of this test; assert consistency either way.
  simd::set_force_scalar(-1);
  const char* env = std::getenv("MOBIWLAN_FORCE_SCALAR");
  const bool env_forced = env && *env && !(env[0] == '0' && env[1] == '\0');
  EXPECT_EQ(simd::force_scalar(), env_forced);
  if (env_forced) EXPECT_FALSE(simd::use_avx2fma());
}

/// Restores the tier override on exit (the three-way generalization of
/// ForceScalarGuard).
struct ForcedTierGuard {
  explicit ForcedTierGuard(int tier) { simd::set_forced_tier(tier); }
  ~ForcedTierGuard() { simd::set_forced_tier(-1); }
};

TEST(SimdDispatchTest, ForcedTierClampsToHostSupport) {
  const simd::Tier best = simd::best_supported_tier();
  {
    ForcedTierGuard guard(0);
    EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
    EXPECT_FALSE(simd::use_avx2fma());
    EXPECT_FALSE(simd::use_avx512());
  }
  {
    // A tier the host lacks degrades gracefully to the best it has; a tier
    // at or below the best is honored exactly.
    ForcedTierGuard guard(1);
    EXPECT_EQ(simd::active_tier(),
              best < simd::Tier::kAvx2 ? best : simd::Tier::kAvx2);
  }
  {
    ForcedTierGuard guard(2);
    EXPECT_EQ(simd::active_tier(), best);  // avx512 -> avx2 -> scalar
  }
  {
    ForcedTierGuard guard(99);  // out-of-range requests clamp to avx512
    EXPECT_EQ(simd::active_tier(), best);
  }
}

TEST(SimdDispatchTest, TierEnvVarHonoredWhenNoOverride) {
  // set_forced_tier(-1) defers to MOBIWLAN_SIMD_TIER (with
  // MOBIWLAN_FORCE_SCALAR as the legacy scalar-only alias); ctest re-runs
  // this binary under both spellings, so assert consistency with whatever
  // the environment says rather than pinning one value.
  simd::set_forced_tier(-1);
  const char* tier_env = std::getenv("MOBIWLAN_SIMD_TIER");
  if (tier_env != nullptr && *tier_env != '\0') {
    const std::string req(tier_env);
    const simd::Tier best = simd::best_supported_tier();
    if (req == "scalar")
      EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
    else if (req == "avx2")
      EXPECT_EQ(simd::active_tier(),
                best < simd::Tier::kAvx2 ? best : simd::Tier::kAvx2);
    else if (req == "avx512")
      EXPECT_EQ(simd::active_tier(), best);
    else
      EXPECT_EQ(simd::active_tier(), best);  // unrecognized: best tier
  }
}

TEST(SimdDispatchTest, LegacyForceScalarMapsOntoTiers) {
  {
    ForceScalarGuard guard(1);
    EXPECT_EQ(simd::active_tier(), simd::Tier::kScalar);
  }
  {
    ForceScalarGuard guard(0);  // un-force: cpuid decides, env ignored
    EXPECT_EQ(simd::active_tier(), simd::best_supported_tier());
  }
}

TEST(SimdDispatchTest, PrecisionOverrideAndDefault) {
  // The default precision obeys MOBIWLAN_PRECISION (unset means fp64); the
  // hook overrides it in both directions and -1 restores deference.
  simd::set_forced_precision(-1);
  const char* env = std::getenv("MOBIWLAN_PRECISION");
  const bool env_f32 =
      env != nullptr && (std::string(env) == "fp32" ||
                         std::string(env) == "float32" ||
                         std::string(env) == "f32");
  EXPECT_EQ(simd::active_precision() == simd::Precision::kFloat32, env_f32);
  simd::set_forced_precision(1);
  EXPECT_EQ(simd::active_precision(), simd::Precision::kFloat32);
  simd::set_forced_precision(0);
  EXPECT_EQ(simd::active_precision(), simd::Precision::kFloat64);
  simd::set_forced_precision(-1);
  EXPECT_EQ(simd::active_precision() == simd::Precision::kFloat32, env_f32);
}

TEST(SimdDispatchTest, TierAndPrecisionNames) {
  EXPECT_STREQ(simd::tier_name(simd::Tier::kScalar), "scalar");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx2), "avx2");
  EXPECT_STREQ(simd::tier_name(simd::Tier::kAvx512), "avx512");
  EXPECT_STREQ(simd::precision_name(simd::Precision::kFloat64), "fp64");
  EXPECT_STREQ(simd::precision_name(simd::Precision::kFloat32), "fp32");
}

TEST(SimdDispatchTest, ScalarAndSimdChannelsAgreeOnGoldenCases) {
  for (std::size_t idx = 0; idx < goldencase::kNumCases; ++idx) {
    SCOPED_TRACE(goldencase::case_name(idx));
    std::vector<ChannelSample> scalar, dispatched;
    {
      ForceScalarGuard guard(1);
      scalar = sample_channel(idx);
    }
    {
      ForceScalarGuard guard(0);  // cpuid decides: AVX2 where available
      dispatched = sample_channel(idx);
    }
    ASSERT_EQ(scalar.size(), dispatched.size());
    for (std::size_t k = 0; k < scalar.size(); ++k) {
      const ChannelSample& a = scalar[k];
      const ChannelSample& b = dispatched[k];
      // Same numerical-equivalence budget as the golden fixtures: the AVX2
      // variants reproduce the scalar arithmetic (FMA contraction included)
      // to <= 1e-12 on every observable.
      EXPECT_NEAR(a.rssi_dbm, b.rssi_dbm, 1e-12) << "sample " << k;
      EXPECT_NEAR(a.snr_db, b.snr_db, 1e-12) << "sample " << k;
      EXPECT_NEAR(a.tof_cycles, b.tof_cycles, 1e-12) << "sample " << k;
      ASSERT_EQ(a.csi.raw().size(), b.csi.raw().size());
      for (std::size_t e = 0; e < a.csi.raw().size(); ++e) {
        EXPECT_NEAR(a.csi.raw()[e].real(), b.csi.raw()[e].real(), 1e-12)
            << "sample " << k << " entry " << e;
        EXPECT_NEAR(a.csi.raw()[e].imag(), b.csi.raw()[e].imag(), 1e-12)
            << "sample " << k << " entry " << e;
      }
    }
  }
}

}  // namespace
}  // namespace mobiwlan
