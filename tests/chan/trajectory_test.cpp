// Tests for the four mobility-class motion models and controlled variants.
#include "chan/trajectory.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

TEST(StaticTrajectoryTest, NeverMoves) {
  StaticTrajectory t({2.0, 3.0});
  for (double time : {0.0, 1.0, 100.0}) {
    EXPECT_DOUBLE_EQ(t.position(time).x, 2.0);
    EXPECT_DOUBLE_EQ(t.position(time).y, 3.0);
  }
  EXPECT_EQ(t.mobility_class(), MobilityClass::kStatic);
  EXPECT_NEAR(t.speed(5.0), 0.0, 1e-9);
}

TEST(MicroTrajectoryTest, ConfinedToExtent) {
  Rng rng(1);
  const Vec2 anchor{10.0, -5.0};
  MicroTrajectory t(anchor, rng, 0.5);
  for (double time = 0.0; time < 60.0; time += 0.05) {
    const Vec2 p = t.position(time);
    // Sum of per-axis amplitudes is bounded by extent.
    EXPECT_LE(std::abs(p.x - anchor.x), 0.5 + 1e-9);
    EXPECT_LE(std::abs(p.y - anchor.y), 0.5 + 1e-9);
  }
  EXPECT_EQ(t.mobility_class(), MobilityClass::kMicro);
}

TEST(MicroTrajectoryTest, ActuallyMoves) {
  Rng rng(2);
  MicroTrajectory t({0.0, 0.0}, rng, 0.5);
  double max_speed = 0.0;
  for (double time = 0.0; time < 10.0; time += 0.02)
    max_speed = std::max(max_speed, t.speed(time));
  EXPECT_GT(max_speed, 0.2);   // gesture-like speeds
  EXPECT_LT(max_speed, 5.0);   // but not superhuman
}

TEST(MicroTrajectoryTest, DeterministicGivenRng) {
  Rng rng1(3);
  Rng rng2(3);
  MicroTrajectory a({0.0, 0.0}, rng1);
  MicroTrajectory b({0.0, 0.0}, rng2);
  for (double time : {0.1, 1.7, 9.9})
    EXPECT_DOUBLE_EQ(a.position(time).x, b.position(time).x);
}

TEST(WalkTrajectoryTest, WalkingSpeedAboutRight) {
  Rng rng(4);
  WalkTrajectory::Config cfg;
  cfg.swing_amplitude_m = 0.0;  // isolate trunk speed
  WalkTrajectory t({0.0, 0.0}, rng, cfg);
  for (double time = 1.0; time < 50.0; time += 1.0) {
    EXPECT_NEAR(t.speed(time), cfg.speed_mps, 0.2) << "t=" << time;
  }
}

TEST(WalkTrajectoryTest, StaysInBounds) {
  Rng rng(5);
  WalkTrajectory::Config cfg;
  cfg.bounds_min = {-10.0, -5.0};
  cfg.bounds_max = {10.0, 5.0};
  WalkTrajectory t({0.0, 0.0}, rng, cfg, 300.0);
  for (double time = 0.0; time < 300.0; time += 0.5) {
    const Vec2 p = t.position(time);
    EXPECT_GE(p.x, cfg.bounds_min.x - 1.0);
    EXPECT_LE(p.x, cfg.bounds_max.x + 1.0);
    EXPECT_GE(p.y, cfg.bounds_min.y - 1.0);
    EXPECT_LE(p.y, cfg.bounds_max.y + 1.0);
  }
}

TEST(WalkTrajectoryTest, CoversDistance) {
  Rng rng(6);
  WalkTrajectory t({0.0, 0.0}, rng);
  double total = 0.0;
  Vec2 prev = t.position(0.0);
  for (double time = 1.0; time <= 30.0; time += 1.0) {
    const Vec2 p = t.position(time);
    total += distance(prev, p);
    prev = p;
  }
  EXPECT_GT(total, 20.0);  // ~1.2 m/s for 30 s, minus turns/swing
}

TEST(WalkTrajectoryTest, HandSwingRaisesPeakSpeed) {
  Rng rng1(7);
  Rng rng2(7);
  WalkTrajectory::Config no_swing;
  no_swing.swing_amplitude_m = 0.0;
  WalkTrajectory::Config swing;
  WalkTrajectory plain({0.0, 0.0}, rng1, no_swing);
  WalkTrajectory swung({0.0, 0.0}, rng2, swing);
  double peak_plain = 0.0;
  double peak_swung = 0.0;
  for (double time = 0.5; time < 15.0; time += 0.01) {
    peak_plain = std::max(peak_plain, plain.speed(time));
    peak_swung = std::max(peak_swung, swung.speed(time));
  }
  EXPECT_GT(peak_swung, peak_plain + 0.5);
}

TEST(WalkTrajectoryTest, RadialConstraintKeepsHeadingRadial) {
  Rng rng(8);
  WalkTrajectory::Config cfg;
  cfg.constrain_radial = true;
  cfg.radial_focus = {0.0, 0.0};
  cfg.swing_amplitude_m = 0.0;
  WalkTrajectory t({15.0, 0.0}, rng, cfg, 120.0);
  // Measure |radial speed| / speed on leg interiors; with the cone of 0.6 rad
  // it should be mostly > cos(0.6) ~ 0.825.
  int radial_enough = 0;
  int samples = 0;
  for (double time = 1.0; time < 110.0; time += 0.5) {
    const Vec2 p0 = t.position(time - 0.2);
    const Vec2 p1 = t.position(time + 0.2);
    const double moved = distance(p0, p1);
    if (moved < 0.1) continue;
    const double radial_change = std::abs(p1.norm() - p0.norm());
    if (radial_change / moved > 0.7) ++radial_enough;
    ++samples;
  }
  ASSERT_GT(samples, 50);
  EXPECT_GT(static_cast<double>(radial_enough) / samples, 0.75);
}

TEST(LinearTrajectoryTest, ConstantVelocity) {
  LinearTrajectory t({0.0, 0.0}, {1.0, 0.0}, 2.0);
  EXPECT_NEAR(t.position(3.0).x, 6.0, 1e-12);
  EXPECT_NEAR(t.speed(1.0), 2.0, 1e-6);
  EXPECT_EQ(t.mobility_class(), MobilityClass::kMacro);
}

TEST(LinearTrajectoryTest, DirectionNormalized) {
  LinearTrajectory t({0.0, 0.0}, {10.0, 0.0}, 1.0);
  EXPECT_NEAR(t.position(1.0).x, 1.0, 1e-12);
}

TEST(RadialBounceTest, StaysBetweenRadii) {
  RadialBounceTrajectory t({0.0, 0.0}, {5.0, 0.0}, 3.0, 12.0, 1.2);
  for (double time = 0.0; time < 60.0; time += 0.1) {
    const double r = t.radius(time);
    EXPECT_GE(r, 3.0 - 1e-9);
    EXPECT_LE(r, 12.0 + 1e-9);
  }
}

TEST(RadialBounceTest, AlternatesDirection) {
  RadialBounceTrajectory t({0.0, 0.0}, {5.0, 0.0}, 3.0, 12.0, 1.2);
  int flips = 0;
  bool prev = t.moving_toward(0.0);
  for (double time = 0.1; time < 40.0; time += 0.1) {
    const bool now = t.moving_toward(time);
    if (now != prev) ++flips;
    prev = now;
  }
  EXPECT_GE(flips, 2);
}

TEST(RadialBounceTest, RadialSpeedMatches) {
  RadialBounceTrajectory t({0.0, 0.0}, {6.0, 0.0}, 3.0, 12.0, 1.5);
  // Away from turn points the radial speed equals the configured speed.
  const double r0 = t.radius(1.0);
  const double r1 = t.radius(1.1);
  EXPECT_NEAR(std::abs(r1 - r0) / 0.1, 1.5, 0.01);
}

TEST(CircularTrajectoryTest, ConstantRadius) {
  CircularTrajectory t({2.0, 2.0}, 7.0, 1.2);
  for (double time = 0.0; time < 30.0; time += 0.3) {
    EXPECT_NEAR(distance(t.position(time), {2.0, 2.0}), 7.0, 1e-9);
  }
  EXPECT_EQ(t.mobility_class(), MobilityClass::kMacro);
}

TEST(CircularTrajectoryTest, TangentialSpeedMatches) {
  CircularTrajectory t({0.0, 0.0}, 5.0, 1.3);
  EXPECT_NEAR(t.speed(2.0), 1.3, 0.01);
}

TEST(CircularTrajectoryTest, ZeroRadiusDoesNotDivide) {
  CircularTrajectory t({1.0, 1.0}, 0.0, 1.0);
  EXPECT_NEAR(t.position(5.0).x, 1.0, 1e-12);
}

}  // namespace
}  // namespace mobiwlan
