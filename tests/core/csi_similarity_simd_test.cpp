// csi_similarity_simd_test — scalar-vs-AVX2 agreement for Eq. (1).
//
// The vectorized kernel computes magnitudes as sqrt(re^2 + im^2) and
// reduces 4 partial sums in fixed lane order, so it matches the scalar
// Pearson path to rounding (~1e-14 relative), not bitwise. These tests pin
// the agreement on realistic CSI and the kernel's own structural
// contracts: exact argument symmetry and the zero-variance guard. On hosts
// without AVX2+FMA both runs take the scalar path and the comparisons are
// trivially exact.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "chan/channel.hpp"
#include "core/csi_similarity.hpp"
#include "util/simd.hpp"
#include "../chan/channel_golden_cases.hpp"

namespace mobiwlan {
namespace {

/// Runs `fn` once with SIMD dispatch un-forced and once pinned to scalar,
/// restoring the environment-deferred default afterwards.
template <typename Fn>
void with_both_kernels(Fn fn, double& simd_out, double& scalar_out) {
  simd::set_force_scalar(0);
  simd_out = fn();
  simd::set_force_scalar(1);
  scalar_out = fn();
  simd::set_force_scalar(-1);
}

std::vector<CsiMatrix> golden_snapshots() {
  std::vector<CsiMatrix> out;
  for (std::size_t idx = 0; idx < goldencase::kNumCases; ++idx) {
    auto ch = goldencase::make_golden_channel(idx);
    out.push_back(ch->csi_at(0.0));
    out.push_back(ch->csi_at(0.5));
  }
  return out;
}

TEST(CsiSimilaritySimd, MatchesScalarOnGoldenChannels) {
  const std::vector<CsiMatrix> snaps = golden_snapshots();
  CsiSimilarityScratch scratch;
  for (std::size_t i = 0; i + 1 < snaps.size(); ++i) {
    double vec = 0.0, sca = 0.0;
    with_both_kernels(
        [&] { return csi_similarity(snaps[i], snaps[i + 1], scratch); }, vec,
        sca);
    EXPECT_NEAR(vec, sca, 1e-12) << "pair " << i;
    EXPECT_LE(std::abs(vec), 1.0 + 1e-12);
  }
}

TEST(CsiSimilaritySimd, PerPairOverloadMatchesScalar) {
  const std::vector<CsiMatrix> snaps = golden_snapshots();
  CsiSimilarityScratch scratch;
  const CsiMatrix& a = snaps[0];
  const CsiMatrix& b = snaps[1];
  for (std::size_t tx = 0; tx < a.n_tx(); ++tx)
    for (std::size_t rx = 0; rx < a.n_rx(); ++rx) {
      double vec = 0.0, sca = 0.0;
      with_both_kernels(
          [&] { return csi_similarity(a, b, tx, rx, scratch); }, vec, sca);
      EXPECT_NEAR(vec, sca, 1e-12) << "pair (" << tx << "," << rx << ")";
    }
}

TEST(CsiSimilaritySimd, VectorKernelIsExactlySymmetric) {
  const std::vector<CsiMatrix> snaps = golden_snapshots();
  CsiSimilarityScratch scratch;
  simd::set_force_scalar(0);
  for (std::size_t i = 0; i + 1 < snaps.size(); i += 2)
    EXPECT_EQ(csi_similarity(snaps[i], snaps[i + 1], scratch),
              csi_similarity(snaps[i + 1], snaps[i], scratch));
  simd::set_force_scalar(-1);
}

TEST(CsiSimilaritySimd, SelfSimilarityIsOneUnderBothKernels) {
  const std::vector<CsiMatrix> snaps = golden_snapshots();
  CsiSimilarityScratch scratch;
  double vec = 0.0, sca = 0.0;
  with_both_kernels([&] { return csi_similarity(snaps[0], snaps[0], scratch); },
                    vec, sca);
  EXPECT_NEAR(vec, 1.0, 1e-12);
  EXPECT_NEAR(sca, 1.0, 1e-12);
}

TEST(CsiSimilaritySimd, ConstantMagnitudesScoreZeroUnderBothKernels) {
  // Zero magnitude variance trips the guard in both kernels.
  CsiMatrix a(3, 2, 52);
  CsiMatrix b(3, 2, 52);
  for (std::size_t k = 0; k < a.raw().size(); ++k) {
    a.raw()[k] = cplx{0.25, 0.0};
    b.raw()[k] = cplx{0.0, 0.5};
  }
  CsiSimilarityScratch scratch;
  double vec = 0.0, sca = 0.0;
  with_both_kernels([&] { return csi_similarity(a, b, scratch); }, vec, sca);
  EXPECT_EQ(vec, 0.0);
  EXPECT_EQ(sca, 0.0);
}

}  // namespace
}  // namespace mobiwlan
