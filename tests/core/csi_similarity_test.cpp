// Tests for Equation (1): the CSI similarity metric.
#include "core/csi_similarity.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobiwlan {
namespace {

CsiMatrix random_csi(Rng& rng, std::size_t tx = 3, std::size_t rx = 2,
                     std::size_t sc = 52) {
  CsiMatrix m(tx, rx, sc);
  for (auto& v : m.raw()) v = rng.complex_gaussian();
  return m;
}

TEST(PearsonTest, PerfectCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  const std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, PerfectAntiCorrelation) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{3.0, 2.0, 1.0};
  EXPECT_NEAR(pearson_correlation(a, b), -1.0, 1e-12);
}

TEST(PearsonTest, ShiftAndScaleInvariant) {
  const std::vector<double> a{1.0, 5.0, 2.0, 8.0};
  std::vector<double> b;
  for (double x : a) b.push_back(3.0 * x + 7.0);
  EXPECT_NEAR(pearson_correlation(a, b), 1.0, 1e-12);
}

TEST(PearsonTest, ConstantVectorYieldsZero) {
  const std::vector<double> a{2.0, 2.0, 2.0};
  const std::vector<double> b{1.0, 2.0, 3.0};
  EXPECT_DOUBLE_EQ(pearson_correlation(a, b), 0.0);
}

TEST(PearsonTest, SizeMismatchThrows) {
  const std::vector<double> a{1.0};
  const std::vector<double> b{1.0, 2.0};
  EXPECT_THROW(pearson_correlation(a, b), std::invalid_argument);
}

TEST(PearsonTest, EmptyThrows) {
  const std::vector<double> e;
  EXPECT_THROW(pearson_correlation(e, e), std::invalid_argument);
}

TEST(CsiSimilarityTest, IdenticalCsiIsOne) {
  Rng rng(1);
  const CsiMatrix a = random_csi(rng);
  EXPECT_NEAR(csi_similarity(a, a), 1.0, 1e-12);
}

TEST(CsiSimilarityTest, ScaleInvariant) {
  // AGC rescaling between packets must not change the similarity.
  Rng rng(2);
  const CsiMatrix a = random_csi(rng);
  CsiMatrix b = a;
  for (auto& v : b.raw()) v *= 3.7;
  EXPECT_NEAR(csi_similarity(a, b), 1.0, 1e-12);
}

TEST(CsiSimilarityTest, PhaseRotationOfWholeMatrixInvariant) {
  // Similarity uses magnitudes, so a common phase rotation is invisible.
  Rng rng(3);
  const CsiMatrix a = random_csi(rng);
  CsiMatrix b = a;
  for (auto& v : b.raw()) v *= std::polar(1.0, 2.1);
  EXPECT_NEAR(csi_similarity(a, b), 1.0, 1e-12);
}

TEST(CsiSimilarityTest, IndependentChannelsNearZero) {
  Rng rng(4);
  double sum = 0.0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i)
    sum += csi_similarity(random_csi(rng), random_csi(rng));
  EXPECT_NEAR(sum / trials, 0.0, 0.1);
}

TEST(CsiSimilarityTest, SmallPerturbationStaysHigh) {
  Rng rng(5);
  const CsiMatrix a = random_csi(rng);
  CsiMatrix b = a;
  for (auto& v : b.raw()) v += rng.complex_gaussian(0.001);
  EXPECT_GT(csi_similarity(a, b), 0.95);
}

TEST(CsiSimilarityTest, SimilarityDecreasesWithPerturbation) {
  Rng rng(6);
  const CsiMatrix a = random_csi(rng);
  double prev = 1.0;
  for (double var : {0.01, 0.1, 1.0, 10.0}) {
    CsiMatrix b = a;
    Rng noise(42);
    for (auto& v : b.raw()) v += noise.complex_gaussian(var);
    const double s = csi_similarity(a, b);
    EXPECT_LT(s, prev + 0.05);
    prev = s;
  }
}

TEST(CsiSimilarityTest, PerPairMatchesManualComputation) {
  Rng rng(7);
  const CsiMatrix a = random_csi(rng, 2, 1, 8);
  const CsiMatrix b = random_csi(rng, 2, 1, 8);
  const double pair0 = csi_similarity(a, b, 0, 0);
  const double pair1 = csi_similarity(a, b, 1, 0);
  EXPECT_NEAR(csi_similarity(a, b), (pair0 + pair1) / 2.0, 1e-12);
}

TEST(CsiSimilarityTest, DimensionMismatchThrows) {
  Rng rng(8);
  const CsiMatrix a = random_csi(rng, 3, 2, 52);
  const CsiMatrix b = random_csi(rng, 3, 2, 26);
  EXPECT_THROW(csi_similarity(a, b), std::invalid_argument);
}

}  // namespace
}  // namespace mobiwlan
