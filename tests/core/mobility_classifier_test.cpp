// Tests for the Fig. 5 classifier state machine, driven by both synthetic
// CSI streams (unit level) and the channel simulator (behavioural level).
#include "core/mobility_classifier.hpp"

#include <gtest/gtest.h>

#include "chan/scenario.hpp"
#include "util/rng.hpp"

namespace mobiwlan {
namespace {

CsiMatrix random_csi(Rng& rng) {
  CsiMatrix m(3, 2, 52);
  for (auto& v : m.raw()) v = rng.complex_gaussian();
  return m;
}

CsiMatrix perturbed(const CsiMatrix& base, double variance, Rng& rng) {
  CsiMatrix m = base;
  for (auto& v : m.raw()) v += rng.complex_gaussian(variance);
  return m;
}

/// Run a scenario through the classifier and return the fraction of
/// per-second decisions (after warmup) matching the coarse ground truth.
double accuracy_on(const Scenario& s, double duration_s = 35.0) {
  MobilityClassifier clf;
  double next_csi = 0.0;
  double next_tof = 0.0;
  int correct = 0;
  int total = 0;
  for (double t = 0.0; t < duration_s; t += 0.02) {
    if (t >= next_csi - 1e-9) {
      clf.on_csi(t, s.channel->csi_at(t));
      next_csi += clf.config().csi_period_s;
    }
    if (t >= next_tof - 1e-9) {
      clf.on_tof(t, s.channel->tof_cycles(t));
      next_tof += clf.config().tof_period_s;
    }
    if (t > 10.0 && std::fmod(t, 1.0) < 0.02) {
      ++total;
      if (to_class(clf.mode()) == s.truth) ++correct;
    }
  }
  return total > 0 ? static_cast<double>(correct) / total : 0.0;
}

TEST(ClassifierUnitTest, DefaultsToStatic) {
  MobilityClassifier clf;
  EXPECT_EQ(clf.mode(), MobilityMode::kStatic);
  EXPECT_FALSE(clf.similarity().has_value());
  EXPECT_FALSE(clf.tof_active());
}

TEST(ClassifierUnitTest, StableCsiStreamClassifiesStatic) {
  MobilityClassifier clf;
  Rng rng(1);
  const CsiMatrix base = random_csi(rng);
  for (double t = 0.0; t < 5.0; t += 0.5)
    clf.on_csi(t, perturbed(base, 1e-5, rng));
  EXPECT_EQ(clf.mode(), MobilityMode::kStatic);
  ASSERT_TRUE(clf.similarity().has_value());
  EXPECT_GT(*clf.similarity(), 0.98);
  EXPECT_FALSE(clf.tof_active());
}

TEST(ClassifierUnitTest, ModeratePerturbationClassifiesEnvironmental) {
  MobilityClassifier clf;
  Rng rng(2);
  const CsiMatrix base = random_csi(rng);
  // Perturbation tuned to land between the two thresholds (sim ~ 0.85).
  for (double t = 0.0; t < 6.0; t += 0.5)
    clf.on_csi(t, perturbed(base, 0.12, rng));
  ASSERT_TRUE(clf.similarity().has_value());
  EXPECT_EQ(clf.mode(), MobilityMode::kEnvironmental);
  EXPECT_FALSE(clf.tof_active());
}

TEST(ClassifierUnitTest, UncorrelatedCsiStartsToF) {
  MobilityClassifier clf;
  Rng rng(3);
  for (double t = 0.0; t < 4.0; t += 0.5) clf.on_csi(t, random_csi(rng));
  EXPECT_TRUE(clf.tof_active());
  EXPECT_EQ(clf.mode(), MobilityMode::kMicro);  // no ToF trend yet
}

TEST(ClassifierUnitTest, DeviceMobilityWithRisingTofIsMacroAway) {
  MobilityClassifier clf;
  Rng rng(4);
  double tof = 100.0;
  for (double t = 0.0; t < 12.0; t += 0.02) {
    if (std::fmod(t, 0.5) < 0.02) clf.on_csi(t, random_csi(rng));
    clf.on_tof(t, std::round(tof + 0.7 * t + rng.gaussian(0.0, 1.0)));
  }
  EXPECT_EQ(clf.mode(), MobilityMode::kMacroAway);
}

TEST(ClassifierUnitTest, DeviceMobilityWithFallingTofIsMacroToward) {
  MobilityClassifier clf;
  Rng rng(5);
  for (double t = 0.0; t < 12.0; t += 0.02) {
    if (std::fmod(t, 0.5) < 0.02) clf.on_csi(t, random_csi(rng));
    clf.on_tof(t, std::round(150.0 - 0.7 * t + rng.gaussian(0.0, 1.0)));
  }
  EXPECT_EQ(clf.mode(), MobilityMode::kMacroToward);
}

TEST(ClassifierUnitTest, TofIgnoredWhileNotDeviceMobile) {
  MobilityClassifier clf;
  Rng rng(6);
  const CsiMatrix base = random_csi(rng);
  for (double t = 0.0; t < 10.0; t += 0.02) {
    if (std::fmod(t, 0.5) < 0.02) clf.on_csi(t, perturbed(base, 1e-5, rng));
    clf.on_tof(t, std::round(100.0 + 2.0 * t));  // strong trend, but static CSI
  }
  EXPECT_EQ(clf.mode(), MobilityMode::kStatic);
  EXPECT_FALSE(clf.tof_active());
}

TEST(ClassifierUnitTest, TofStateClearedWhenLeavingDeviceMobility) {
  MobilityClassifier clf;
  Rng rng(7);
  // Phase 1: device mobility with rising ToF -> macro-away.
  for (double t = 0.0; t < 10.0; t += 0.02) {
    if (std::fmod(t, 0.5) < 0.02) clf.on_csi(t, random_csi(rng));
    clf.on_tof(t, std::round(100.0 + 0.8 * t));
  }
  EXPECT_EQ(clf.mode(), MobilityMode::kMacroAway);
  // Phase 2: the device is put down -> static CSI; ToF must stop.
  const CsiMatrix base = random_csi(rng);
  for (double t = 10.0; t < 14.0; t += 0.5) clf.on_csi(t, perturbed(base, 1e-5, rng));
  EXPECT_EQ(clf.mode(), MobilityMode::kStatic);
  EXPECT_FALSE(clf.tof_active());
}

TEST(ClassifierUnitTest, DecimatesFastCsiFeed) {
  // Feeding every 10 ms must not collapse similarity computation to
  // back-to-back samples: a *slowly* drifting channel still looks static.
  MobilityClassifier clf;
  Rng rng(8);
  const CsiMatrix base = random_csi(rng);
  for (double t = 0.0; t < 4.0; t += 0.01)
    clf.on_csi(t, perturbed(base, 1e-5, rng));
  ASSERT_TRUE(clf.similarity().has_value());
  EXPECT_EQ(clf.mode(), MobilityMode::kStatic);
}

TEST(ClassifierUnitTest, ThresholdsConfigurable) {
  MobilityClassifier::Config cfg;
  cfg.thr_sta = 0.5;  // absurdly lax: everything is "static"
  MobilityClassifier clf(cfg);
  Rng rng(9);
  const CsiMatrix base = random_csi(rng);
  for (double t = 0.0; t < 4.0; t += 0.5) clf.on_csi(t, perturbed(base, 0.12, rng));
  EXPECT_EQ(clf.mode(), MobilityMode::kStatic);
}

TEST(ClassifierUnitTest, DecisionMatchesModeWhileCsiIsFresh) {
  MobilityClassifier clf;
  EXPECT_FALSE(clf.decision(0.0).has_value());  // no similarity yet
  Rng rng(21);
  const CsiMatrix base = random_csi(rng);
  for (double t = 0.0; t <= 5.0; t += 0.5) {
    clf.on_csi(t, perturbed(base, 1e-5, rng));
    if (clf.similarity()) {
      const auto d = clf.decision(t);
      ASSERT_TRUE(d.has_value());
      EXPECT_EQ(*d, clf.mode());
    }
  }
}

TEST(ClassifierUnitTest, DecisionDecaysAfterCsiStaleHold) {
  MobilityClassifier clf;
  Rng rng(22);
  const CsiMatrix base = random_csi(rng);
  for (double t = 0.0; t <= 5.0; t += 0.5)
    clf.on_csi(t, perturbed(base, 1e-5, rng));
  const double hold = clf.config().csi_stale_hold_s;
  // Within the hold the last mode is still actionable...
  ASSERT_TRUE(clf.decision(5.0 + hold).has_value());
  EXPECT_EQ(*clf.decision(5.0 + hold), MobilityMode::kStatic);
  // ...past it the classifier declines to decide rather than act on stale
  // state (consumers fall back to their PHY-hint-free behaviour).
  EXPECT_FALSE(clf.decision(5.0 + hold + 0.1).has_value());
}

TEST(ClassifierUnitTest, CsiGapReanchorsSimilarityStream) {
  MobilityClassifier clf;
  Rng rng(23);
  const CsiMatrix base = random_csi(rng);
  for (double t = 0.0; t <= 3.0; t += 0.5)
    clf.on_csi(t, perturbed(base, 1e-5, rng));
  ASSERT_TRUE(clf.similarity().has_value());
  EXPECT_EQ(clf.mode(), MobilityMode::kStatic);
  // A 2 s hole (> 2.5 periods): comparing across it would measure the gap,
  // not the channel. The first post-gap sample must only re-anchor — even a
  // completely uncorrelated one must not flip the mode by itself.
  const CsiMatrix anchor = random_csi(rng);
  clf.on_csi(5.0, anchor);
  EXPECT_FALSE(clf.similarity().has_value());
  EXPECT_FALSE(clf.decision(5.0).has_value());
  EXPECT_EQ(clf.mode(), MobilityMode::kStatic);
  // Consecutive samples after the re-anchor rebuild the similarity average
  // from genuinely adjacent pairs and decisions resume.
  for (double t = 5.5; t <= 8.0; t += 0.5)
    clf.on_csi(t, perturbed(anchor, 1e-5, rng));
  ASSERT_TRUE(clf.similarity().has_value());
  ASSERT_TRUE(clf.decision(8.0).has_value());
  EXPECT_EQ(*clf.decision(8.0), MobilityMode::kStatic);
}

// ---------- behavioural tests over the channel simulator -----------------

TEST(ClassifierScenarioTest, StaticScenario) {
  // Averaged over locations: an individual far, low-SNR link can sit just
  // below the 0.98 threshold (the paper's static accuracy is 97%, not 100%).
  Rng rng(11);
  double acc = 0.0;
  for (int i = 0; i < 3; ++i)
    acc += accuracy_on(make_scenario(MobilityClass::kStatic, rng));
  EXPECT_GT(acc / 3.0, 0.8);
}

TEST(ClassifierScenarioTest, EnvironmentalScenario) {
  Rng rng(12);
  double acc = 0.0;
  for (int i = 0; i < 3; ++i)
    acc += accuracy_on(make_scenario(MobilityClass::kEnvironmental, rng));
  EXPECT_GT(acc / 3.0, 0.6);
}

TEST(ClassifierScenarioTest, MicroScenario) {
  Rng rng(13);
  const Scenario s = make_scenario(MobilityClass::kMicro, rng);
  EXPECT_GT(accuracy_on(s), 0.9);
}

TEST(ClassifierScenarioTest, MacroScenario) {
  Rng rng(14);
  double acc = 0.0;
  for (int i = 0; i < 3; ++i)
    acc += accuracy_on(make_scenario(MobilityClass::kMacro, rng));
  EXPECT_GT(acc / 3.0, 0.6);
}

TEST(ClassifierScenarioTest, HeadingResolvedOnRadialWalks) {
  // Controlled moving-away experiment: the classifier should report
  // macro-away (not just "macro") most of the time.
  Rng rng(15);
  const Scenario s = make_radial_scenario(false, 8.0, rng);
  MobilityClassifier clf;
  double next_csi = 0.0;
  double next_tof = 0.0;
  int away = 0;
  int total = 0;
  for (double t = 0.0; t < 20.0; t += 0.02) {
    if (t >= next_csi - 1e-9) {
      clf.on_csi(t, s.channel->csi_at(t));
      next_csi += 0.5;
    }
    if (t >= next_tof - 1e-9) {
      clf.on_tof(t, s.channel->tof_cycles(t));
      next_tof += 0.02;
    }
    if (t > 8.0 && std::fmod(t, 1.0) < 0.02) {
      ++total;
      if (clf.mode() == MobilityMode::kMacroAway) ++away;
    }
  }
  EXPECT_GT(static_cast<double>(away) / total, 0.7);
}

TEST(ClassifierScenarioTest, CircularWalkMisclassifiedAsMicro) {
  // The documented §9 limitation: constant distance -> no ToF trend ->
  // walking client classified micro.
  Rng rng(16);
  const Scenario s = make_circular_scenario(10.0, rng);
  MobilityClassifier clf;
  double next_csi = 0.0;
  double next_tof = 0.0;
  int micro = 0;
  int total = 0;
  for (double t = 0.0; t < 25.0; t += 0.02) {
    if (t >= next_csi - 1e-9) {
      clf.on_csi(t, s.channel->csi_at(t));
      next_csi += 0.5;
    }
    if (t >= next_tof - 1e-9) {
      clf.on_tof(t, s.channel->tof_cycles(t));
      next_tof += 0.02;
    }
    if (t > 10.0 && std::fmod(t, 1.0) < 0.02) {
      ++total;
      if (clf.mode() == MobilityMode::kMicro) ++micro;
    }
  }
  EXPECT_GT(static_cast<double>(micro) / total, 0.7);
}

TEST(ClassifierScenarioTest, ObserveConvenienceMatchesManualFeed) {
  Rng rng1(17);
  Rng rng2(17);
  Scenario s1 = make_scenario(MobilityClass::kMicro, rng1);
  Scenario s2 = make_scenario(MobilityClass::kMicro, rng2);
  MobilityClassifier a;
  MobilityClassifier b;
  for (double t = 0.0; t < 5.0; t += 0.02) {
    const ChannelSample sample = s1.channel->sample(t);
    a.observe(sample);
    const ChannelSample sample2 = s2.channel->sample(t);
    b.on_csi(sample2.t, sample2.csi);
    b.on_tof(sample2.t, sample2.tof_cycles);
  }
  EXPECT_EQ(a.mode(), b.mode());
}

}  // namespace
}  // namespace mobiwlan
