// Tests for the Table-2 protocol parameter matrix: the orderings the paper's
// observations imply, not just raw values.
#include "core/policy.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

constexpr MobilityMode kAllModes[] = {
    MobilityMode::kStatic, MobilityMode::kEnvironmental, MobilityMode::kMicro,
    MobilityMode::kMacroAway, MobilityMode::kMacroToward};

TEST(PolicyTest, OnlyMovingAwayEncouragesRoaming) {
  // §3.1: roaming is required only when the client moves away from its AP.
  for (MobilityMode m : kAllModes) {
    EXPECT_EQ(mobility_params(m).encourage_roaming, m == MobilityMode::kMacroAway)
        << to_string(m);
  }
}

TEST(PolicyTest, StaticKeepsLongestPerHistory) {
  // §4.2 optimization 2: history length commensurate with mobility.
  const double static_alpha = mobility_params(MobilityMode::kStatic).per_smoothing_alpha;
  for (MobilityMode m : kAllModes) {
    if (m == MobilityMode::kStatic) continue;
    EXPECT_LT(static_alpha, mobility_params(m).per_smoothing_alpha) << to_string(m);
  }
}

TEST(PolicyTest, MovingTowardProbesFastest) {
  // §4.2 optimization 3: probe aggressively only when approaching the AP.
  const double toward = mobility_params(MobilityMode::kMacroToward).probe_interval_s;
  for (MobilityMode m : kAllModes) {
    if (m == MobilityMode::kMacroToward) continue;
    EXPECT_LT(toward, mobility_params(m).probe_interval_s) << to_string(m);
  }
}

TEST(PolicyTest, MovingAwayProbesSlowest) {
  const double away = mobility_params(MobilityMode::kMacroAway).probe_interval_s;
  for (MobilityMode m : kAllModes) {
    if (m == MobilityMode::kMacroAway) continue;
    EXPECT_GT(away, mobility_params(m).probe_interval_s) << to_string(m);
  }
}

TEST(PolicyTest, MovingAwayNeverRetries) {
  // §4.2 optimization 1: full losses are believed immediately when the
  // channel is known to be deteriorating.
  EXPECT_EQ(mobility_params(MobilityMode::kMacroAway).rate_retries, 0);
  EXPECT_GT(mobility_params(MobilityMode::kStatic).rate_retries, 0);
}

TEST(PolicyTest, AggregationShrinksWithMobilityIntensity) {
  // §5.1: 8 ms static/environmental, 2 ms micro/macro.
  EXPECT_DOUBLE_EQ(mobility_params(MobilityMode::kStatic).aggregation_limit_s, 8e-3);
  EXPECT_DOUBLE_EQ(mobility_params(MobilityMode::kEnvironmental).aggregation_limit_s,
                   8e-3);
  EXPECT_DOUBLE_EQ(mobility_params(MobilityMode::kMicro).aggregation_limit_s, 2e-3);
  EXPECT_DOUBLE_EQ(mobility_params(MobilityMode::kMacroAway).aggregation_limit_s, 2e-3);
  EXPECT_DOUBLE_EQ(mobility_params(MobilityMode::kMacroToward).aggregation_limit_s,
                   2e-3);
}

TEST(PolicyTest, FeedbackPeriodShrinksWithMobilityIntensity) {
  // §6.3: "the higher the intensity of mobility ... the higher the required
  // frequency of the CSI feedback."
  const double sta = mobility_params(MobilityMode::kStatic).bf_update_period_s;
  const double env = mobility_params(MobilityMode::kEnvironmental).bf_update_period_s;
  const double mic = mobility_params(MobilityMode::kMicro).bf_update_period_s;
  const double mac = mobility_params(MobilityMode::kMacroAway).bf_update_period_s;
  EXPECT_GT(sta, env);
  EXPECT_GT(env, mic);
  EXPECT_GT(mic, mac);
}

TEST(PolicyTest, MuMimoAtLeastAsAggressiveAsSuBf) {
  for (MobilityMode m : kAllModes) {
    EXPECT_LE(mobility_params(m).mumimo_update_period_s,
              mobility_params(m).bf_update_period_s)
        << to_string(m);
  }
}

TEST(PolicyTest, DefaultMatchesStockDriver) {
  const ProtocolParams d = default_params();
  EXPECT_DOUBLE_EQ(d.per_smoothing_alpha, 1.0 / 8.0);  // §4.1
  EXPECT_EQ(d.rate_retries, 0);
  EXPECT_DOUBLE_EQ(d.aggregation_limit_s, 4e-3);       // §5.1 default
  EXPECT_DOUBLE_EQ(d.bf_update_period_s, 2e-3);        // §6.3 default
  EXPECT_FALSE(d.encourage_roaming);
}

TEST(PolicyTest, OrbitSharesMacroChannelDynamics) {
  // An orbiting client has macro channel dynamics but no roaming pressure.
  const ProtocolParams orbit = mobility_params(MobilityMode::kMacroOrbit);
  EXPECT_FALSE(orbit.encourage_roaming);
  EXPECT_DOUBLE_EQ(orbit.aggregation_limit_s,
                   mobility_params(MobilityMode::kMacroAway).aggregation_limit_s);
  EXPECT_DOUBLE_EQ(orbit.bf_update_period_s,
                   mobility_params(MobilityMode::kMacroAway).bf_update_period_s);
}

TEST(PolicyTest, MacroDirectionsShareChannelDynamicsParams) {
  // Toward and away have the same channel coherence, so smoothing and
  // aggregation match; only probing/roaming/retries differ.
  const ProtocolParams away = mobility_params(MobilityMode::kMacroAway);
  const ProtocolParams toward = mobility_params(MobilityMode::kMacroToward);
  EXPECT_DOUBLE_EQ(away.per_smoothing_alpha, toward.per_smoothing_alpha);
  EXPECT_DOUBLE_EQ(away.aggregation_limit_s, toward.aggregation_limit_s);
  EXPECT_DOUBLE_EQ(away.bf_update_period_s, toward.bf_update_period_s);
}

TEST(MobilityModeTest, CoarseMapping) {
  EXPECT_EQ(to_class(MobilityMode::kMacroAway), MobilityClass::kMacro);
  EXPECT_EQ(to_class(MobilityMode::kMacroToward), MobilityClass::kMacro);
  EXPECT_EQ(to_class(MobilityMode::kStatic), MobilityClass::kStatic);
}

TEST(MobilityModeTest, DeviceMobilityPredicate) {
  EXPECT_TRUE(is_device_mobility(MobilityMode::kMicro));
  EXPECT_TRUE(is_device_mobility(MobilityMode::kMacroAway));
  EXPECT_FALSE(is_device_mobility(MobilityMode::kEnvironmental));
  EXPECT_FALSE(is_device_mobility(MobilityMode::kStatic));
}

TEST(MobilityModeTest, Names) {
  EXPECT_EQ(to_string(MobilityMode::kMacroToward), "macro-toward");
  EXPECT_EQ(to_string(MobilityClass::kEnvironmental), "environmental");
}

}  // namespace
}  // namespace mobiwlan
