// Adversarial ToF traces: quantization plateaus, measurement spikes, and
// runs sitting exactly on the detector's thresholds.
//
// The tracker's contract (§2.4): macro-mobility is declared only when ALL
// per-second medians in the window trend one way, with two escape hatches —
// per-pair slack for quantization plateaus and a strict minimum net change
// to reject monotone-by-luck noise. These tests drive each hatch to its
// exact boundary; the basic happy paths live in tof_tracker_test.cpp.
#include "core/tof_tracker.hpp"

#include <vector>

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

/// Feeds one aggregation period (50 readings at 20 ms) of a constant value,
/// so the epoch's median is exactly `value`. Returns the next epoch start.
double feed_epoch(TofTracker& tracker, double t0, double value) {
  for (int i = 0; i < 50; ++i) tracker.add(t0 + 0.02 * i, value);
  return t0 + 1.0;
}

/// Feeds a sequence of per-second medians (one constant epoch each).
void feed_medians(TofTracker& tracker, const std::vector<double>& medians,
                  double t0 = 0.0) {
  double t = t0;
  for (const double m : medians) t = feed_epoch(tracker, t, m);
  // One reading past the final boundary flushes the last epoch's median.
  tracker.add(t, medians.empty() ? 0.0 : medians.back());
}

TEST(TofTrackerAdversarialTest, FlatPlateauIsNotATrend) {
  // Perfectly quantized standstill: every median identical. All pairwise
  // moves are within slack, but net change 0 fails the min-change gate.
  TofTracker tracker;
  feed_medians(tracker, {100.0, 100.0, 100.0, 100.0, 100.0});
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);
}

TEST(TofTrackerAdversarialTest, PlateausInsideARampDoNotBreakIt) {
  // A walking ramp whose quantized medians stall for a step mid-window:
  // the stall (0 change) is within slack, the net change is well past the
  // gate, so the trend must survive the plateau.
  TofTracker tracker;
  feed_medians(tracker, {100.0, 101.0, 101.0, 102.5});
  EXPECT_EQ(tracker.trend(), TofTrend::kIncreasing);
}

TEST(TofTrackerAdversarialTest, CounterTrendStepBeyondSlackBreaksTheRun) {
  // Default slack is 0.45 cycles: a 0.5-cycle dip against an otherwise
  // clean ramp must break it, and an identical dip of 0.4 must not.
  TofTracker broken;
  feed_medians(broken, {100.0, 101.5, 101.0, 103.0});  // dip 0.5 > slack
  EXPECT_EQ(broken.trend(), TofTrend::kNone);

  TofTracker intact;
  feed_medians(intact, {100.0, 101.5, 101.1, 103.0});  // dip 0.4 < slack
  EXPECT_EQ(intact.trend(), TofTrend::kIncreasing);
}

TEST(TofTrackerAdversarialTest, ExactThresholdNetChangeIsRejected) {
  // The min-change gate is strict (>). Binary-exact values (quarter cycles,
  // gate 1.25) make "net change == gate" exact rather than rounded, so this
  // pins the comparison operator, not double formatting.
  TofTracker::Config config;
  config.min_change_cycles = 1.25;

  TofTracker at_threshold(config);
  feed_medians(at_threshold, {100.0, 100.5, 100.75, 101.25});  // net == 1.25
  EXPECT_EQ(at_threshold.trend(), TofTrend::kNone);

  TofTracker past_threshold(config);
  feed_medians(past_threshold, {100.0, 100.5, 100.75, 101.5});  // net 1.5
  EXPECT_EQ(past_threshold.trend(), TofTrend::kIncreasing);
}

TEST(TofTrackerAdversarialTest, SpikeRollsOutOfTheWindow) {
  // A single spiked median poisons every window containing it; once it
  // slides out (window = 4 medians), a clean ongoing ramp is re-detected.
  TofTracker tracker;
  double t = 0.0;
  t = feed_epoch(tracker, t, 100.0);
  t = feed_epoch(tracker, t, 101.0);
  t = feed_epoch(tracker, t, 140.0);  // spike (e.g. a multipath flip)
  t = feed_epoch(tracker, t, 102.0);
  tracker.add(t, 102.0);
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);  // window holds the spike

  t = feed_epoch(tracker, t, 103.0);
  t = feed_epoch(tracker, t, 104.5);
  t = feed_epoch(tracker, t, 106.0);
  tracker.add(t, 106.0);  // window is now {102, 103, 104.5, 106}
  EXPECT_EQ(tracker.trend(), TofTrend::kIncreasing);
}

TEST(TofTrackerAdversarialTest, DecreasingMirrorsIncreasing) {
  TofTracker walk_toward;
  feed_medians(walk_toward, {106.0, 104.5, 104.6, 103.0});  // rise 0.1 ok
  EXPECT_EQ(walk_toward.trend(), TofTrend::kDecreasing);

  TofTracker::Config config;
  config.min_change_cycles = 1.25;
  TofTracker at_threshold(config);
  feed_medians(at_threshold, {101.25, 100.75, 100.5, 100.0});  // net == -1.25
  EXPECT_EQ(at_threshold.trend(), TofTrend::kNone);
}

TEST(TofTrackerAdversarialTest, SparseReadingsNeverFormATrend) {
  // Readings 3 s apart: each flush is a valid median of its own epoch (so
  // median_count advances), but the empty epochs in between break the
  // consecutive-second evidence chain — the trend window restarts at every
  // gap instead of stitching medians that are seconds apart into a "4 s"
  // window actually spanning 12 s.
  TofTracker tracker;
  tracker.add(0.0, 100.0);
  tracker.add(3.0, 101.0);   // flushes epoch 0's median only
  tracker.add(6.0, 102.0);   // flushes epoch 3's median only
  tracker.add(9.0, 103.0);
  EXPECT_EQ(tracker.median_count(), 3u);
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);
  tracker.add(12.0, 104.0);
  EXPECT_EQ(tracker.median_count(), 4u);
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);  // never consecutive
}

TEST(TofTrackerAdversarialTest, ResetDropsHistoryMidRamp) {
  // Fig. 5: leaving device mobility stops ToF measurement and clears state.
  // A ramp split across a reset must not be stitched back together.
  TofTracker tracker;
  feed_medians(tracker, {100.0, 101.0, 102.0, 103.0});
  EXPECT_EQ(tracker.trend(), TofTrend::kIncreasing);
  tracker.reset();
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);
  EXPECT_EQ(tracker.median_count(), 0u);
  EXPECT_FALSE(tracker.last_median().has_value());
  // Two more ramp medians: window (4) is far from full again.
  feed_medians(tracker, {104.0, 105.0}, 100.0);
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);
}

}  // namespace
}  // namespace mobiwlan
