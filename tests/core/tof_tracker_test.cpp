// Tests for the ToF median/trend pipeline (§2.4-2.5).
#include "core/tof_tracker.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobiwlan {
namespace {

// Feed a synthetic ToF stream: base + slope*t + gaussian noise, sampled at
// 20 ms for `duration` seconds.
void feed(TofTracker& tracker, double base, double slope_per_s, double noise_std,
          double duration_s, Rng& rng, double t0 = 0.0) {
  for (double t = t0; t < t0 + duration_s; t += 0.02) {
    const double v =
        std::round(base + slope_per_s * (t - t0) + rng.gaussian(0.0, noise_std));
    tracker.add(t, v);
  }
}

TEST(TofTrackerTest, NoTrendUntilWindowFull) {
  TofTracker tracker;
  Rng rng(1);
  feed(tracker, 100.0, 2.0, 0.0, 2.5, rng);  // only 2 medians
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);
}

TEST(TofTrackerTest, MedianCadenceOnePerSecond) {
  TofTracker tracker;
  Rng rng(2);
  feed(tracker, 100.0, 0.0, 0.0, 5.5, rng);
  EXPECT_EQ(tracker.median_count(), 5u);
  ASSERT_TRUE(tracker.last_median().has_value());
  EXPECT_NEAR(*tracker.last_median(), 100.0, 0.5);
}

TEST(TofTrackerTest, DetectsIncreasingTrend) {
  // Walking away: ~0.7 cycles/s of drift against ~1 cycle of noise.
  TofTracker tracker;
  Rng rng(3);
  feed(tracker, 100.0, 0.7, 1.0, 6.0, rng);
  EXPECT_EQ(tracker.trend(), TofTrend::kIncreasing);
}

TEST(TofTrackerTest, DetectsDecreasingTrend) {
  TofTracker tracker;
  Rng rng(4);
  feed(tracker, 100.0, -0.7, 1.0, 6.0, rng);
  EXPECT_EQ(tracker.trend(), TofTrend::kDecreasing);
}

TEST(TofTrackerTest, FlatNoisySignalNoTrend) {
  // Micro-mobility: no systematic drift. Check over many independent windows
  // that false trends are rare.
  Rng rng(5);
  int false_trends = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    TofTracker tracker;
    feed(tracker, 100.0, 0.0, 1.1, 6.0, rng);
    if (tracker.trend() != TofTrend::kNone) ++false_trends;
  }
  EXPECT_LE(false_trends, 5);
}

TEST(TofTrackerTest, ResetClearsEverything) {
  TofTracker tracker;
  Rng rng(6);
  feed(tracker, 100.0, 1.0, 0.0, 6.0, rng);
  EXPECT_NE(tracker.trend(), TofTrend::kNone);
  tracker.reset();
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);
  EXPECT_EQ(tracker.median_count(), 0u);
  EXPECT_FALSE(tracker.last_median().has_value());
}

TEST(TofTrackerTest, RestartsCleanlyAfterReset) {
  TofTracker tracker;
  Rng rng(7);
  feed(tracker, 100.0, 1.0, 0.5, 6.0, rng);
  tracker.reset();
  feed(tracker, 200.0, -1.0, 0.5, 6.0, rng, /*t0=*/20.0);
  EXPECT_EQ(tracker.trend(), TofTrend::kDecreasing);
}

TEST(TofTrackerTest, MedianRejectsOutliers) {
  TofTracker tracker;
  Rng rng(8);
  for (double t = 0.0; t < 1.2; t += 0.02) {
    // One in ten readings is a wild outlier.
    const double v = (static_cast<int>(t / 0.02) % 10 == 0) ? 500.0 : 100.0;
    tracker.add(t, v);
  }
  ASSERT_TRUE(tracker.last_median().has_value());
  EXPECT_NEAR(*tracker.last_median(), 100.0, 0.5);
}

TEST(TofTrackerTest, SmallDriftBelowMinChangeIgnored) {
  // Drift too small to count as walking (min_change gate).
  TofTracker tracker;
  Rng rng(9);
  feed(tracker, 100.0, 0.05, 0.0, 6.0, rng);
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);
}

TEST(TofTrackerTest, ConfigurableWindow) {
  TofTracker::Config cfg;
  cfg.trend_window = 6;
  TofTracker tracker(cfg);
  Rng rng(10);
  feed(tracker, 100.0, 1.0, 0.0, 5.0, rng);  // only 5 medians < 6
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);
  feed(tracker, 105.0, 1.0, 0.0, 2.0, rng, 5.0);
  EXPECT_EQ(tracker.trend(), TofTrend::kIncreasing);
}

TEST(TofTrackerTest, ObservationGapBreaksTrendEvidence) {
  // Regression: per-second medians on either side of a multi-second hole in
  // the readings (dropped ToF exports) used to be treated as consecutive,
  // so a pre-gap ramp kept "trending" on stale evidence. Gap semantics are
  // now explicit: the trend window restarts at the gap and must refill with
  // genuinely consecutive seconds before a trend can be declared.
  TofTracker tracker;
  Rng rng(20);
  feed(tracker, 100.0, 0.8, 0.3, 7.0, rng);
  ASSERT_EQ(tracker.trend(), TofTrend::kIncreasing);
  // ~3 s of ramp after a 93 s hole: enough for 3 fresh medians, not enough
  // to refill the 4-median window.
  feed(tracker, 106.0, 0.8, 0.3, 3.5, rng, /*t0=*/100.0);
  EXPECT_EQ(tracker.trend(), TofTrend::kNone);
  // Once the post-gap stream runs long enough, the trend is re-detected
  // from fresh evidence alone.
  feed(tracker, 109.0, 0.8, 0.3, 4.0, rng, /*t0=*/103.5);
  EXPECT_EQ(tracker.trend(), TofTrend::kIncreasing);
}

TEST(TofTrackerTest, HugeGapCostsConstantTime) {
  // Regression: closing out elapsed periods looped once per period, so a
  // reading after a 1e9 s hole spun a billion iterations. Now it is O(1).
  TofTracker tracker;
  Rng rng(21);
  feed(tracker, 100.0, 0.0, 0.0, 1.1, rng);
  const std::size_t before = tracker.median_count();
  tracker.add(1.0e9, 100.0);  // must return immediately
  tracker.add(1.0e9 + 1.0, 100.0);
  EXPECT_LE(tracker.median_count(), before + 2);
}

class TrendSlopeNoiseSweep
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(TrendSlopeNoiseSweep, WalkingSlopesDetectedAcrossNoiseLevels) {
  const auto [slope, noise] = GetParam();
  Rng rng(42);
  int detected = 0;
  const int trials = 20;
  for (int i = 0; i < trials; ++i) {
    TofTracker tracker;
    feed(tracker, 150.0, slope, noise, 7.0, rng);
    const TofTrend want = slope > 0 ? TofTrend::kIncreasing : TofTrend::kDecreasing;
    if (tracker.trend() == want) ++detected;
  }
  EXPECT_GE(detected, trials * 3 / 5)
      << "slope " << slope << " noise " << noise;
}

INSTANTIATE_TEST_SUITE_P(
    SlopesAndNoise, TrendSlopeNoiseSweep,
    ::testing::Values(std::make_pair(0.7, 0.5), std::make_pair(0.7, 1.0),
                      std::make_pair(-0.7, 1.0), std::make_pair(1.4, 1.5),
                      std::make_pair(-1.4, 1.5)));

}  // namespace
}  // namespace mobiwlan
