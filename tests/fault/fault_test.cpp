// Unit tests for the PHY-observable fault-injection layer (src/fault/).
//
// The load-bearing contract is zero-fault bitwise identity: an all-zero
// FaultPlan must make exactly the same channel calls in the same order as
// code that never heard of faults, and a *dropped* reading must leave the
// channel's RNG untouched (the export was lost, not the measurement loop's
// draw order). Several tests below pin that by comparing against a twin
// channel built from the same seed.
#include "fault/fault.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "chan/scenario.hpp"

namespace mobiwlan {
namespace {

Scenario twin_scenario(std::uint64_t seed) {
  Rng rng(seed);
  return make_scenario(MobilityClass::kMacro, rng);
}

TEST(FaultStreamTest, DefaultStreamDeliversEverythingUnshifted) {
  FaultStream s;
  for (double t = 0.0; t < 50.0; t += 0.25) {
    EXPECT_TRUE(s.deliver(t));
    EXPECT_EQ(s.measured_t(t), t);
  }
}

TEST(FaultStreamTest, ZeroPlanMakeStreamIsInactive) {
  const FaultPlan plan;  // all-zero
  FaultStream s = make_stream(plan, FaultStreamKind::kCsi, 3);
  for (double t = 0.0; t < 20.0; t += 0.1) EXPECT_TRUE(s.deliver(t));
}

TEST(FaultStreamTest, BernoulliDropRateMatchesConfiguredProbability) {
  FaultPlan plan;
  plan.seed = 42;
  plan.csi.drop_prob = 0.3;
  FaultStream s = make_stream(plan, FaultStreamKind::kCsi);
  const int n = 20000;
  int delivered = 0;
  for (int i = 0; i < n; ++i)
    if (s.deliver(i * 0.01)) ++delivered;
  EXPECT_NEAR(static_cast<double>(delivered) / n, 0.7, 0.02);
}

TEST(FaultStreamTest, BurstsCarveContiguousOutages) {
  FaultPlan plan;
  plan.seed = 7;
  plan.tof.burst_rate_hz = 0.5;
  plan.tof.burst_min_s = 1.0;
  plan.tof.burst_max_s = 2.0;
  FaultStream s = make_stream(plan, FaultStreamKind::kTof);
  // Sample at 100 Hz; every completed loss run must span >= ~1 s.
  int completed_runs = 0;
  int shortest_run = 1 << 30;
  int current = 0;
  for (double t = 0.0; t < 200.0; t += 0.01) {
    if (!s.deliver(t)) {
      ++current;
    } else if (current > 0) {
      ++completed_runs;
      shortest_run = std::min(shortest_run, current);
      current = 0;
    }
  }
  EXPECT_GT(completed_runs, 10);
  EXPECT_GE(shortest_run, 90);
}

TEST(FaultStreamTest, DelayShiftsMeasurementTime) {
  FaultPlan plan;
  plan.seed = 1;
  plan.csi.delay_s = 0.75;
  FaultStream s = make_stream(plan, FaultStreamKind::kCsi);
  EXPECT_DOUBLE_EQ(s.measured_t(2.0), 1.25);
  EXPECT_DOUBLE_EQ(s.measured_t(0.5), 0.0);  // clamped at the epoch
}

TEST(FaultStreamTest, SubstreamsAreReproducibleAndUnitDecorrelated) {
  FaultPlan plan;
  plan.seed = 99;
  plan.rssi.drop_prob = 0.5;
  FaultStream a = make_stream(plan, FaultStreamKind::kRssi, 4);
  FaultStream b = make_stream(plan, FaultStreamKind::kRssi, 4);
  FaultStream c = make_stream(plan, FaultStreamKind::kRssi, 5);
  int unit_disagreements = 0;
  for (int i = 0; i < 2000; ++i) {
    const double t = i * 0.1;
    const bool da = a.deliver(t);
    EXPECT_EQ(da, b.deliver(t));  // pure function of (seed, kind, unit)
    if (da != c.deliver(t)) ++unit_disagreements;
  }
  EXPECT_GT(unit_disagreements, 200);  // distinct units draw distinct worlds
}

TEST(DegradedObservablesTest, ZeroPlanIsBitwiseIdenticalToRawChannel) {
  const Scenario a = twin_scenario(2024);
  const Scenario b = twin_scenario(2024);
  DegradedObservables obs(*a.channel, FaultPlan{});
  for (double t = 0.0; t < 12.0; t += 0.25) {
    const auto csi = obs.csi(t);
    ASSERT_TRUE(csi.has_value());
    EXPECT_EQ(csi->raw(), b.channel->csi_at(t).raw());
    const auto tof = obs.tof_cycles(t);
    ASSERT_TRUE(tof.has_value());
    EXPECT_EQ(*tof, b.channel->tof_cycles(t));
    const auto rssi = obs.rssi_dbm(t);
    ASSERT_TRUE(rssi.has_value());
    EXPECT_EQ(*rssi, b.channel->rssi_dbm(t));
    EXPECT_TRUE(obs.feedback_delivered(t));
  }
}

TEST(DegradedObservablesTest, RssiOnlyFallbackKeepsOnlyRssi) {
  const Scenario a = twin_scenario(5);
  const Scenario b = twin_scenario(5);
  FaultPlan plan;
  plan.rssi_only = true;
  DegradedObservables obs(*a.channel, plan);
  for (double t = 0.0; t < 5.0; t += 0.5) {
    EXPECT_FALSE(obs.csi(t).has_value());
    EXPECT_FALSE(obs.tof_cycles(t).has_value());
    EXPECT_FALSE(obs.feedback_delivered(t));
    const auto rssi = obs.rssi_dbm(t);
    ASSERT_TRUE(rssi.has_value());
    EXPECT_EQ(*rssi, b.channel->rssi_dbm(t));
  }
}

TEST(DegradedObservablesTest, DroppedReadingLeavesChannelRngUntouched) {
  const Scenario a = twin_scenario(77);
  const Scenario b = twin_scenario(77);
  FaultPlan plan;
  plan.seed = 3;
  plan.csi.drop_prob = 1.0;  // every CSI export lost
  DegradedObservables obs(*a.channel, plan);
  for (double t = 0.0; t < 5.0; t += 0.5) {
    EXPECT_FALSE(obs.csi(t).has_value());
    // The twin never issues the CSI call at all; if the drop path had
    // consumed channel randomness, these subsequent draws would diverge.
    const auto tof = obs.tof_cycles(t);
    ASSERT_TRUE(tof.has_value());
    EXPECT_EQ(*tof, b.channel->tof_cycles(t));
  }
}

TEST(DegradedObservablesTest, DelayedReadingIsTheOlderObservable) {
  const Scenario a = twin_scenario(31);
  const Scenario b = twin_scenario(31);
  FaultPlan plan;
  plan.seed = 8;
  plan.tof.delay_s = 0.5;
  DegradedObservables obs(*a.channel, plan);
  for (double t = 1.0; t < 8.0; t += 0.5) {
    const auto tof = obs.tof_cycles(t);
    ASSERT_TRUE(tof.has_value());
    // Staleness contract: the consumer never sees anything newer than
    // t - delay_s.
    EXPECT_EQ(*tof, b.channel->tof_cycles(t - 0.5));
  }
}

}  // namespace
}  // namespace mobiwlan
