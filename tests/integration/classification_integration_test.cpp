// Integration: Table-1-style accuracy of the full classification pipeline
// over randomized locations, at reduced trial counts suitable for CI.
// The bench binary bench_table1_classification runs the full-scale version.
#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "chan/scenario.hpp"
#include "core/mobility_classifier.hpp"

namespace mobiwlan {
namespace {

struct ClassResult {
  std::map<MobilityClass, int> counts;
  int total = 0;

  double accuracy(MobilityClass truth) const {
    const auto it = counts.find(truth);
    const int correct = it == counts.end() ? 0 : it->second;
    return total > 0 ? static_cast<double>(correct) / total : 0.0;
  }
};

ClassResult run_trials(MobilityClass cls, int trials, std::uint64_t seed) {
  Rng master(seed);
  ClassResult result;
  for (int trial = 0; trial < trials; ++trial) {
    Scenario s = make_scenario(cls, master);
    MobilityClassifier clf;
    double next_csi = 0.0;
    double next_tof = 0.0;
    for (double t = 0.0; t < 35.0; t += 0.02) {
      if (t >= next_csi - 1e-9) {
        clf.on_csi(t, s.channel->csi_at(t));
        next_csi += clf.config().csi_period_s;
      }
      if (t >= next_tof - 1e-9) {
        clf.on_tof(t, s.channel->tof_cycles(t));
        next_tof += clf.config().tof_period_s;
      }
      if (t > 10.0 && std::fmod(t, 1.0) < 0.02) {
        ++result.total;
        ++result.counts[to_class(clf.mode())];
      }
    }
  }
  return result;
}

class AccuracyPerClass
    : public ::testing::TestWithParam<std::pair<MobilityClass, double>> {};

TEST_P(AccuracyPerClass, MeetsFloor) {
  const auto [cls, floor] = GetParam();
  const ClassResult r = run_trials(cls, 8, 4242);
  EXPECT_GE(r.accuracy(cls), floor) << to_string(cls);
}

// Floors are set below the calibrated full-scale accuracies (97/91/100/90)
// to absorb small-sample noise at 8 trials.
INSTANTIATE_TEST_SUITE_P(
    AllClasses, AccuracyPerClass,
    ::testing::Values(std::make_pair(MobilityClass::kStatic, 0.85),
                      std::make_pair(MobilityClass::kEnvironmental, 0.70),
                      std::make_pair(MobilityClass::kMicro, 0.90),
                      std::make_pair(MobilityClass::kMacro, 0.70)));

TEST(ClassificationIntegrationTest, NoCrossContaminationStaticVsDevice) {
  // Static must never be classified as device mobility and vice versa —
  // those confusions would flip every downstream protocol decision.
  ClassResult stat = run_trials(MobilityClass::kStatic, 6, 777);
  EXPECT_EQ(stat.counts[MobilityClass::kMicro] + stat.counts[MobilityClass::kMacro],
            0);
  ClassResult micro = run_trials(MobilityClass::kMicro, 6, 778);
  EXPECT_EQ(micro.counts[MobilityClass::kStatic], 0);
}

TEST(ClassificationIntegrationTest, EnvironmentalNeverLooksMacro) {
  // Environmental errors fall into micro (ToF shows no trend for a static
  // device), never macro.
  ClassResult env = run_trials(MobilityClass::kEnvironmental, 6, 779);
  EXPECT_EQ(env.counts[MobilityClass::kMacro], 0);
}

TEST(ClassificationIntegrationTest, HeadingAccuracyOnControlledWalks) {
  // Controlled toward/away radial walks: the detected macro direction must
  // match ground truth in the vast majority of classified-macro seconds.
  Rng master(991);
  int correct = 0;
  int classified = 0;
  for (int trial = 0; trial < 6; ++trial) {
    const bool toward = trial % 2 == 0;
    Scenario s = make_radial_scenario(toward, toward ? 30.0 : 8.0, master);
    MobilityClassifier clf;
    double next_csi = 0.0;
    double next_tof = 0.0;
    for (double t = 0.0; t < 16.0; t += 0.02) {
      if (t >= next_csi - 1e-9) {
        clf.on_csi(t, s.channel->csi_at(t));
        next_csi += 0.5;
      }
      if (t >= next_tof - 1e-9) {
        clf.on_tof(t, s.channel->tof_cycles(t));
        next_tof += 0.02;
      }
      if (t > 8.0 && std::fmod(t, 1.0) < 0.02 && is_macro(clf.mode())) {
        ++classified;
        const MobilityMode want =
            toward ? MobilityMode::kMacroToward : MobilityMode::kMacroAway;
        if (clf.mode() == want) ++correct;
      }
    }
  }
  ASSERT_GT(classified, 10);
  EXPECT_GT(static_cast<double>(correct) / classified, 0.9);
}

}  // namespace
}  // namespace mobiwlan
