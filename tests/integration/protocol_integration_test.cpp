// Integration: reduced-scale versions of the protocol comparisons the bench
// binaries run at full scale (§4-§6). Each asserts the *direction* of the
// paper's result on a handful of seeds.
#include <gtest/gtest.h>

#include "chan/scenario.hpp"
#include "mac/atheros_ra.hpp"
#include "mac/esnr_ra.hpp"
#include "mac/link_sim.hpp"
#include "sim/beamforming_sim.hpp"
#include "util/stats.hpp"

namespace mobiwlan {
namespace {

double run_link(MobilityClass cls, bool aware, std::uint64_t seed,
                const LinkSimConfig& base) {
  Rng rng(seed);
  Scenario s = make_scenario(cls, rng);
  Rng frame_rng(seed + 5000);
  if (aware) {
    AtherosRa ra = make_mobility_aware_atheros_ra();
    return simulate_link(s, ra, base, frame_rng).goodput_mbps;
  }
  AtherosRa ra;
  return simulate_link(s, ra, base, frame_rng).goodput_mbps;
}

TEST(RateAdaptationIntegration, MobilityHintsHelpDeviceMobility) {
  // §4.3 direction: motion-aware Atheros RA > stock on walking links (TCP).
  LinkSimConfig cfg;
  cfg.duration_s = 10.0;
  cfg.tcp_stall_s = 0.025;
  double aware = 0.0;
  double stock = 0.0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    aware += run_link(MobilityClass::kMacro, true, 100 + seed, cfg);
    stock += run_link(MobilityClass::kMacro, false, 100 + seed, cfg);
  }
  EXPECT_GT(aware, stock * 1.02);
}

TEST(RateAdaptationIntegration, HintsHarmlessWhenStatic) {
  // Static links: the mobility-aware variant must not be (much) worse.
  LinkSimConfig cfg;
  cfg.duration_s = 8.0;
  double aware = 0.0;
  double stock = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    aware += run_link(MobilityClass::kStatic, true, 300 + seed, cfg);
    stock += run_link(MobilityClass::kStatic, false, 300 + seed, cfg);
  }
  EXPECT_GT(aware, stock * 0.9);
}

TEST(RateAdaptationIntegration, EsnrUpperBoundsFrameBasedSchemes) {
  // §4.3: ESNR is the ceiling among the compared schemes.
  LinkSimConfig phy_cfg;
  phy_cfg.duration_s = 8.0;
  phy_cfg.provide_phy_feedback = true;
  LinkSimConfig frame_cfg;
  frame_cfg.duration_s = 8.0;

  double esnr_total = 0.0;
  double stock_total = 0.0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    {
      Rng rng(400 + seed);
      Scenario s = make_scenario(MobilityClass::kMacro, rng);
      EsnrRa ra;
      Rng frame_rng(5400 + seed);
      esnr_total += simulate_link(s, ra, phy_cfg, frame_rng).goodput_mbps;
    }
    {
      Rng rng(400 + seed);
      Scenario s = make_scenario(MobilityClass::kMacro, rng);
      AtherosRa ra;
      Rng frame_rng(5400 + seed);
      stock_total += simulate_link(s, ra, frame_cfg, frame_rng).goodput_mbps;
    }
  }
  EXPECT_GT(esnr_total, stock_total);
}

TEST(AggregationIntegration, OptimalLimitShrinksWithMobility) {
  // Fig. 10(a) direction: static prefers 8 ms over 2 ms; macro the reverse.
  auto mean_tput = [](MobilityClass cls, double limit) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(500 + seed);
      Scenario s = make_scenario(cls, rng);
      AtherosRa ra;
      LinkSimConfig cfg;
      cfg.duration_s = 6.0;
      cfg.aggregation.fixed_limit_s = limit;
      cfg.interference_burst_rate_hz = 0.0;
      Rng frame_rng(600 + seed);
      total += simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
    }
    return total;
  };
  EXPECT_GT(mean_tput(MobilityClass::kStatic, 8e-3),
            mean_tput(MobilityClass::kStatic, 2e-3));
  EXPECT_GT(mean_tput(MobilityClass::kMacro, 2e-3),
            mean_tput(MobilityClass::kMacro, 8e-3));
}

TEST(AggregationIntegration, AdaptiveTracksBestFixedChoice) {
  // The adaptive policy should be within a few percent of the better of the
  // two static configurations on macro links.
  auto run = [](bool adaptive, double fixed) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(700 + seed);
      Scenario s = make_scenario(MobilityClass::kMacro, rng);
      AtherosRa ra;
      LinkSimConfig cfg;
      cfg.duration_s = 6.0;
      cfg.aggregation.adaptive = adaptive;
      cfg.aggregation.fixed_limit_s = fixed;
      Rng frame_rng(800 + seed);
      total += simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
    }
    return total;
  };
  const double adaptive = run(true, 4e-3);
  const double fixed8 = run(false, 8e-3);
  EXPECT_GT(adaptive, fixed8);
}

TEST(BeamformingIntegration, AdaptiveFeedbackBeatsDefaultOnMacro) {
  // Fig. 11(b) direction, macro links only (where the default 20 ms period
  // is most wrong in both directions across modes).
  auto run = [](bool adaptive) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(900 + seed);
      Scenario s = make_scenario(MobilityClass::kStatic, rng);
      BeamformingSimConfig cfg;
      cfg.duration_s = 5.0;
      cfg.adaptive_period = adaptive;
      Rng sim_rng(1000 + seed);
      total += simulate_su_beamforming(s, cfg, sim_rng).throughput_mbps;
    }
    return total;
  };
  // For static clients, adapting to 200 ms removes the default's overhead.
  EXPECT_GT(run(true), run(false));
}

}  // namespace
}  // namespace mobiwlan
