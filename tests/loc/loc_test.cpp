// Tests for the localization workload (src/loc/): fingerprint features,
// the survey-built database (purity of survey_cell, parallel-adopt ==
// serial-build, refresh semantics and derived-table sync), the two-stage
// locator, and the mobility gate's routing state machine.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <optional>
#include <vector>

#include "loc/fingerprint.hpp"
#include "loc/fingerprint_db.hpp"
#include "loc/locator.hpp"
#include "loc/mobility_gate.hpp"

namespace mobiwlan::loc {
namespace {

FingerprintDbConfig small_cfg() {
  FingerprintDbConfig cfg;
  cfg.cols = 8;
  cfg.rows = 8;
  cfg.pitch_m = 4.0;
  cfg.snapshots = 2;
  cfg.coverage_radius_m = 60.0;
  cfg.seed = 20140204;
  return cfg;
}

std::vector<Vec2> small_aps() {
  return {Vec2{4.0, 4.0}, Vec2{28.0, 4.0}, Vec2{16.0, 28.0}};
}

/// One surveyed 8x8 / 3-AP database shared by the read-only tests; tests
/// that mutate (refresh) take a copy.
const FingerprintDb& test_db() {
  static const FingerprintDb db = [] {
    FingerprintDb d(small_cfg(), small_aps(), ChannelConfig{});
    d.build();
    return d;
  }();
  return db;
}

TEST(FingerprintTest, ZeroCsiFloorsEveryBand) {
  float out[kFeat];
  extract_features(CsiMatrix(3, 2, 52), -50.0, out);
  EXPECT_FLOAT_EQ(out[0], -50.0f);
  for (std::size_t b = 1; b < kFeat; ++b)
    EXPECT_FLOAT_EQ(out[b], static_cast<float>(kMagFloorDb)) << "band " << b;
}

TEST(FingerprintTest, FeaturesAreFiniteOnRealCsi) {
  const FingerprintDb& db = test_db();
  // Every stored feature of every audible AP must be finite and at or
  // above the magnitude floor.
  for (std::size_t cell = 0; cell < db.n_cells(); ++cell) {
    std::uint64_t bits = db.cell_mask(cell);
    while (bits != 0) {
      const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      const float* row = db.cell_features(cell);
      for (std::size_t f = 1; f < kFeat; ++f) {
        ASSERT_TRUE(std::isfinite(row[ap * kFeat + f]));
        ASSERT_GE(row[ap * kFeat + f], static_cast<float>(kMagFloorDb));
      }
    }
  }
}

TEST(FingerprintDbTest, CellGeometryRoundTrips) {
  const FingerprintDb& db = test_db();
  for (std::size_t cell = 0; cell < db.n_cells(); ++cell)
    EXPECT_EQ(db.nearest_cell(db.cell_center(cell)), cell);
  // Points outside the grid clamp to the edge cells.
  EXPECT_EQ(db.nearest_cell(Vec2{-100.0, -100.0}), 0u);
  EXPECT_EQ(db.nearest_cell(Vec2{1000.0, 1000.0}), db.n_cells() - 1);
}

TEST(FingerprintDbTest, EveryCellIsCovered) {
  const FingerprintDb& db = test_db();
  for (std::size_t cell = 0; cell < db.n_cells(); ++cell)
    ASSERT_NE(db.cell_mask(cell), 0u) << "cell " << cell;
}

TEST(FingerprintDbTest, SurveyCellIsPure) {
  const FingerprintDb& db = test_db();
  const std::size_t n = db.n_aps();
  std::vector<float> row_a(n * kFeat), row_b(n * kFeat);
  std::vector<float> rssi_a(n), rssi_b(n);
  std::uint64_t mask_a = 0, mask_b = 0;
  ChannelBatch::Scratch scratch;
  const std::size_t cell = 27;
  db.survey_cell(cell, row_a.data(), rssi_a.data(), &mask_a, scratch);
  db.survey_cell(cell, row_b.data(), rssi_b.data(), &mask_b, scratch);
  EXPECT_EQ(mask_a, mask_b);
  EXPECT_EQ(row_a, row_b);
  EXPECT_EQ(rssi_a, rssi_b);
  // And it reproduces what build() stored.
  EXPECT_EQ(mask_a, db.cell_mask(cell));
  for (std::size_t i = 0; i < n * kFeat; ++i)
    EXPECT_EQ(row_a[i], db.cell_features(cell)[i]) << "feature " << i;
}

TEST(FingerprintDbTest, AdoptedRowsMatchSerialBuildBitwise) {
  // The bench's parallel path: survey every cell into flat arrays (in any
  // order — survey_cell is pure), adopt, and the digest must equal the
  // serial build's.
  FingerprintDb db(small_cfg(), small_aps(), ChannelConfig{});
  const std::size_t n_aps = db.n_aps();
  std::vector<float> rows(db.n_cells() * n_aps * kFeat);
  std::vector<float> rssi(db.n_cells() * n_aps);
  std::vector<std::uint64_t> masks(db.n_cells());
  ChannelBatch::Scratch scratch;
  for (std::size_t c = db.n_cells(); c-- > 0;)  // reverse order on purpose
    db.survey_cell(c, &rows[c * n_aps * kFeat], &rssi[c * n_aps], &masks[c],
                   scratch);
  db.adopt_rows(std::move(rows), std::move(rssi), std::move(masks));
  EXPECT_EQ(db.digest(), test_db().digest());
}

TEST(FingerprintDbTest, DerivedTablesMatchPrimary) {
  const FingerprintDb& db = test_db();
  for (std::size_t cell = 0; cell < db.n_cells(); ++cell) {
    // Transposed plane mirrors the [cell][ap] plane.
    for (std::size_t ap = 0; ap < db.n_aps(); ++ap)
      ASSERT_EQ(db.rssi_plane(ap)[cell], db.cell_rssi(cell)[ap]);
    // Packed row holds the audible APs' features in mask-bit order.
    const float* packed = db.packed_features(cell);
    std::uint64_t bits = db.cell_mask(cell);
    std::size_t rank = 0;
    while (bits != 0) {
      const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
      bits &= bits - 1;
      for (std::size_t f = 0; f < kFeat; ++f)
        ASSERT_EQ(packed[rank * kFeat + f],
                  db.cell_features(cell)[ap * kFeat + f]);
      ++rank;
    }
  }
  // Pair planes are posting-ordered copies of the transposed plane.
  for (std::size_t s = 0; s < db.n_aps(); ++s) {
    for (std::size_t a = 0; a < db.n_aps(); ++a) {
      const float* pp = db.pair_plane(s, a);
      if (pp == nullptr) continue;
      const auto& posting = db.postings(s);
      for (std::size_t i = 0; i < posting.size(); ++i)
        ASSERT_EQ(pp[i], db.rssi_plane(a)[posting[i]]);
    }
  }
}

TEST(FingerprintDbTest, RefreshBlendsSharedApsAndSyncsDerivedTables) {
  FingerprintDb db = test_db();  // mutable copy
  const std::size_t cell = 36;
  const std::uint64_t mask = db.cell_mask(cell);
  ASSERT_NE(mask, 0u);
  const std::uint64_t digest0 = db.digest();

  const std::size_t n_aps = db.n_aps();
  std::vector<float> expected(db.cell_features(cell),
                              db.cell_features(cell) + n_aps * kFeat);
  std::vector<float> query(expected);
  std::vector<float> query_rssi(db.cell_rssi(cell),
                                db.cell_rssi(cell) + n_aps);
  for (float& f : query) f += 2.0f;
  for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
    const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
    for (std::size_t f = 0; f < kFeat; ++f) {
      const std::size_t i = ap * kFeat + f;
      expected[i] = static_cast<float>(0.5 * static_cast<double>(expected[i]) +
                                       0.5 * static_cast<double>(query[i]));
    }
  }

  db.refresh(cell, query.data(), query_rssi.data(), mask, 0.5);
  EXPECT_EQ(db.writes(), test_db().writes() + 1);
  EXPECT_NE(db.digest(), digest0);

  for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
    const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
    for (std::size_t f = 0; f < kFeat; ++f)
      ASSERT_EQ(db.cell_features(cell)[ap * kFeat + f],
                expected[ap * kFeat + f]);
    // The coarse planes track the refreshed RSSI feature exactly.
    ASSERT_EQ(db.cell_rssi(cell)[ap], db.cell_features(cell)[ap * kFeat]);
    ASSERT_EQ(db.rssi_plane(ap)[cell], db.cell_rssi(cell)[ap]);
  }
  // Masks and postings are structural, not refreshed.
  EXPECT_EQ(db.cell_mask(cell), mask);

  // Packed row and pair planes were re-mirrored.
  const float* packed = db.packed_features(cell);
  std::size_t rank = 0;
  for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
    const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
    for (std::size_t f = 0; f < kFeat; ++f)
      ASSERT_EQ(packed[rank * kFeat + f],
                db.cell_features(cell)[ap * kFeat + f]);
    ++rank;
  }
  for (std::uint64_t owners = mask; owners != 0; owners &= owners - 1) {
    const std::size_t s = static_cast<std::size_t>(std::countr_zero(owners));
    const auto& posting = db.postings(s);
    for (std::uint64_t bits = mask; bits != 0; bits &= bits - 1) {
      const std::size_t a = static_cast<std::size_t>(std::countr_zero(bits));
      const float* pp = db.pair_plane(s, a);
      if (pp == nullptr) continue;
      const auto it = std::lower_bound(posting.begin(), posting.end(),
                                       static_cast<std::uint32_t>(cell));
      ASSERT_NE(it, posting.end());
      ASSERT_EQ(pp[static_cast<std::size_t>(it - posting.begin())],
                db.cell_rssi(cell)[a]);
    }
  }
}

TEST(FingerprintDbTest, RefreshIgnoresApsOutsideTheCellMask) {
  FingerprintDb db = test_db();
  const std::size_t cell = 9;
  const std::uint64_t mask = db.cell_mask(cell);
  ASSERT_NE(mask, 0u);
  // A query mask sharing nothing with the cell leaves the features alone
  // (but still counts the write attempt).
  const std::uint64_t disjoint = ~mask & ((std::uint64_t{1} << db.n_aps()) - 1);
  std::vector<float> query(db.n_aps() * kFeat, 99.0f);
  std::vector<float> query_rssi(db.n_aps(), -30.0f);
  const std::uint64_t digest0 = db.digest();
  db.refresh(cell, query.data(), query_rssi.data(), disjoint, 0.5);
  EXPECT_EQ(db.digest(), digest0);
}

TEST(LocatorTest, SelfQueryReturnsOwnCellAtZeroDistance) {
  const FingerprintDb& db = test_db();
  Locator loc(&db, LocatorConfig{});
  Locator::Scratch s;
  for (std::size_t cell : {0u, 27u, 36u, 63u}) {
    loc.seed_query_from_cell(s, cell);
    EXPECT_EQ(loc.fingerprint_distance(s, cell), 0.0);
    const LocEstimate est = loc.locate(s);
    EXPECT_TRUE(est.valid);
    EXPECT_EQ(est.cell, cell);
    EXPECT_EQ(est.distance, 0.0);
  }
}

TEST(LocatorTest, PerturbedSelfQueryStaysInCell) {
  const FingerprintDb& db = test_db();
  Locator loc(&db, LocatorConfig{});
  Locator::Scratch s;
  const std::size_t cell = 28;
  loc.seed_query_from_cell(s, cell);
  // Nudge the band features (not the RSSI) of every visible AP: still far
  // closer to the home cell than to any neighbor.
  for (std::uint64_t bits = s.mask; bits != 0; bits &= bits - 1) {
    const std::size_t ap = static_cast<std::size_t>(std::countr_zero(bits));
    for (std::size_t f = 1; f < kFeat; ++f) s.feat[ap * kFeat + f] += 0.05f;
  }
  const LocEstimate est = loc.locate(s);
  EXPECT_TRUE(est.valid);
  EXPECT_EQ(est.cell, cell);
  EXPECT_GT(est.distance, 0.0);
}

TEST(LocatorTest, EmptyQueryIsInvalid) {
  Locator loc(&test_db(), LocatorConfig{});
  Locator::Scratch s;
  loc.begin_query(s);
  EXPECT_FALSE(loc.locate(s).valid);
}

TEST(MobilityGateTest, StaticRefreshesAtMostOncePerPeriod) {
  MobilityGateConfig cfg;
  cfg.decision_hold_s = 2.0;
  cfg.min_refresh_period_s = 1.0;
  MobilityGate g(cfg);
  EXPECT_EQ(g.route(0.0, MobilityMode::kStatic), GateAction::kRefresh);
  EXPECT_EQ(g.route(0.5, MobilityMode::kStatic), GateAction::kQueryOnly);
  EXPECT_EQ(g.route(1.5, MobilityMode::kStatic), GateAction::kRefresh);
  EXPECT_EQ(g.refreshes(), 2u);
  EXPECT_EQ(g.queries(), 1u);
}

TEST(MobilityGateTest, MobileAndNoisyOnlyQuery) {
  MobilityGate g;
  EXPECT_EQ(g.route(0.0, MobilityMode::kMacroAway), GateAction::kQueryOnly);
  EXPECT_EQ(g.route(1.0, MobilityMode::kMicro), GateAction::kQueryOnly);
  EXPECT_EQ(g.route(2.0, MobilityMode::kEnvironmental), GateAction::kQueryOnly);
  EXPECT_EQ(g.refreshes(), 0u);
}

TEST(MobilityGateTest, UnknownBeforeAnyDecisionOnlyQueries) {
  MobilityGate g;
  EXPECT_EQ(g.route(0.0, std::nullopt), GateAction::kQueryOnly);
  EXPECT_EQ(g.held(), 0u);
  EXPECT_EQ(g.decayed(), 0u);
}

TEST(MobilityGateTest, HoldsStaleDecisionThenDecaysToQueryOnly) {
  MobilityGateConfig cfg;
  cfg.decision_hold_s = 2.0;
  cfg.min_refresh_period_s = 1.0;
  MobilityGate g(cfg);
  EXPECT_EQ(g.route(0.0, MobilityMode::kStatic), GateAction::kRefresh);
  // Decision goes missing: within the hold window the gate keeps acting on
  // "static" — including the right to refresh.
  EXPECT_EQ(g.route(1.5, std::nullopt), GateAction::kRefresh);
  EXPECT_EQ(g.held(), 1u);
  // Past the window: decay to the safe side, and stay there.
  EXPECT_EQ(g.route(4.0, std::nullopt), GateAction::kQueryOnly);
  EXPECT_EQ(g.decayed(), 1u);
  EXPECT_EQ(g.route(5.0, std::nullopt), GateAction::kQueryOnly);
  EXPECT_EQ(g.decayed(), 1u);  // decay is a one-shot transition
  // A fresh decision restores normal routing.
  EXPECT_EQ(g.route(6.0, MobilityMode::kStatic), GateAction::kRefresh);
}

}  // namespace
}  // namespace mobiwlan::loc
