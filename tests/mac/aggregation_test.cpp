// Tests for A-MPDU planning and the adaptive aggregation policy (§5).
#include "mac/aggregation.hpp"

#include <gtest/gtest.h>

#include "core/policy.hpp"

namespace mobiwlan {
namespace {

TEST(AggregationPolicyTest, FixedPolicyIgnoresMode) {
  AggregationPolicy policy;
  policy.adaptive = false;
  policy.fixed_limit_s = 4e-3;
  EXPECT_DOUBLE_EQ(aggregation_limit_s(policy, MobilityMode::kMacroAway), 4e-3);
  EXPECT_DOUBLE_EQ(aggregation_limit_s(policy, std::nullopt), 4e-3);
}

TEST(AggregationPolicyTest, AdaptiveFollowsTable2) {
  AggregationPolicy policy;
  policy.adaptive = true;
  EXPECT_DOUBLE_EQ(aggregation_limit_s(policy, MobilityMode::kStatic), 8e-3);
  EXPECT_DOUBLE_EQ(aggregation_limit_s(policy, MobilityMode::kMicro), 2e-3);
  EXPECT_DOUBLE_EQ(aggregation_limit_s(policy, MobilityMode::kMacroToward), 2e-3);
}

TEST(AggregationPolicyTest, AdaptiveWithoutClassificationFallsBack) {
  AggregationPolicy policy;
  policy.adaptive = true;
  policy.fixed_limit_s = 4e-3;
  EXPECT_DOUBLE_EQ(aggregation_limit_s(policy, std::nullopt), 4e-3);
}

TEST(AmpduPlanTest, PlanRespectsTimeLimit) {
  for (int mcs_index : {0, 4, 9, 15}) {
    for (double limit : {2e-3, 4e-3, 8e-3}) {
      const AmpduPlan plan = plan_ampdu(mcs(mcs_index), limit, 1500);
      EXPECT_GE(plan.n_mpdus, 1);
      // Allow preamble slack plus one MPDU of quantization.
      EXPECT_LE(plan.frame_airtime_s, limit + 1e-3) << mcs_index << " " << limit;
    }
  }
}

TEST(AmpduPlanTest, MoreTimeMoreMpdus) {
  const AmpduPlan small = plan_ampdu(mcs(12), 2e-3, 1500);
  const AmpduPlan large = plan_ampdu(mcs(12), 8e-3, 1500);
  EXPECT_GT(large.n_mpdus, small.n_mpdus);
}

TEST(AmpduPlanTest, AgeFractionsOrderedAndCentered) {
  const AmpduPlan plan = plan_ampdu(mcs(12), 4e-3, 1500);
  ASSERT_GT(plan.n_mpdus, 2);
  double prev = 0.0;
  for (int i = 0; i < plan.n_mpdus; ++i) {
    const double age = plan.mpdu_age_fraction(i);
    EXPECT_GT(age, prev);
    EXPECT_GT(age, 0.0);
    EXPECT_LT(age, 1.0);
    prev = age;
  }
  // First MPDU sits right after the channel estimate; last near frame end.
  EXPECT_LT(plan.mpdu_age_fraction(0), 0.1);
  EXPECT_GT(plan.mpdu_age_fraction(plan.n_mpdus - 1), 0.9);
}

TEST(AmpduPlanTest, SingleMpduAgeIsMidpoint) {
  AmpduPlan plan;
  plan.n_mpdus = 1;
  EXPECT_DOUBLE_EQ(plan.mpdu_age_fraction(0), 0.5);
}

TEST(AmpduPlanTest, ZeroMpdusSafe) {
  AmpduPlan plan;
  plan.n_mpdus = 0;
  EXPECT_DOUBLE_EQ(plan.mpdu_age_fraction(0), 0.0);
}

}  // namespace
}  // namespace mobiwlan
