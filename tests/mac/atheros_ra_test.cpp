// Tests for the stock and mobility-aware Atheros rate adaptation (§4).
#include "mac/atheros_ra.hpp"

#include <gtest/gtest.h>

#include "phy/mcs.hpp"

namespace mobiwlan {
namespace {

TxContext ctx_at(double t, std::optional<MobilityMode> mode = std::nullopt) {
  TxContext ctx;
  ctx.t = t;
  ctx.mobility = mode;
  return ctx;
}

FrameResult result_for(double t, int mcs_index, int n_mpdus, int n_failed) {
  FrameResult r;
  r.t = t;
  r.mcs = mcs_index;
  r.n_mpdus = n_mpdus;
  r.n_failed = n_failed;
  r.block_ack_received = n_failed < n_mpdus;
  return r;
}

TEST(AtherosRaTest, StartsAtHighestRate) {
  AtherosRa ra;
  EXPECT_EQ(ra.select_mcs(ctx_at(0.0)), 15);
}

TEST(AtherosRaTest, SingleStreamLadderTopsAtMcs7) {
  AtherosRa::Config cfg;
  cfg.max_streams = 1;
  AtherosRa ra(cfg);
  EXPECT_EQ(ra.select_mcs(ctx_at(0.0)), 7);
}

TEST(AtherosRaTest, StockDropsRateOnFullLossImmediately) {
  AtherosRa ra;
  const int first = ra.select_mcs(ctx_at(0.0));
  ra.on_result(result_for(0.0, first, 10, 10), ctx_at(0.0));
  EXPECT_LT(ra.current_mcs(), first);
}

TEST(AtherosRaTest, RepeatedFullLossesWalkDownLadder) {
  AtherosRa ra;
  double t = 0.0;
  for (int i = 0; i < 20; ++i) {
    const int mcs_index = ra.select_mcs(ctx_at(t));
    ra.on_result(result_for(t, mcs_index, 10, 10), ctx_at(t));
    t += 0.004;
  }
  EXPECT_EQ(ra.current_mcs(), 0);  // pinned at the bottom, never below
}

TEST(AtherosRaTest, PartialSuccessDoesNotDropImmediately) {
  AtherosRa ra;
  const int first = ra.select_mcs(ctx_at(0.0));
  ra.on_result(result_for(0.0, first, 10, 3), ctx_at(0.0));
  EXPECT_EQ(ra.current_mcs(), first);
}

TEST(AtherosRaTest, SustainedHighPerStepsDownAtEpoch) {
  AtherosRa ra;
  double t = 0.0;
  const int start = ra.current_mcs();
  // 60% PER sustained for many decision epochs (EWMA needs ~10 epochs at
  // alpha 1/8 to cross the 0.4 threshold).
  for (int i = 0; i < 600; ++i) {
    const int mcs_index = ra.select_mcs(ctx_at(t));
    ra.on_result(result_for(t, mcs_index, 10, 6), ctx_at(t));
    t += 0.004;
  }
  EXPECT_LT(ra.current_mcs(), start);
}

TEST(AtherosRaTest, CleanChannelProbesUpward) {
  AtherosRa ra;
  double t = 0.0;
  // Knock it down a few rates first.
  for (int i = 0; i < 3; ++i) {
    const int m = ra.select_mcs(ctx_at(t));
    ra.on_result(result_for(t, m, 10, 10), ctx_at(t));
    t += 0.004;
  }
  const int low = ra.current_mcs();
  // Then run clean for a second: probing should climb back.
  for (int i = 0; i < 250; ++i) {
    const int m = ra.select_mcs(ctx_at(t));
    ra.on_result(result_for(t, m, 10, 0), ctx_at(t));
    t += 0.004;
  }
  EXPECT_GT(ra.current_mcs(), low);
}

TEST(AtherosRaTest, ProbeFlagSetDuringProbe) {
  AtherosRa ra;
  double t = 0.0;
  for (int i = 0; i < 2; ++i) {
    const int m = ra.select_mcs(ctx_at(t));
    ra.on_result(result_for(t, m, 10, 10), ctx_at(t));
    t += 0.004;
  }
  // Clean frames until a probe fires; the flag must be observable.
  bool saw_probe = false;
  for (int i = 0; i < 300 && !saw_probe; ++i) {
    ra.select_mcs(ctx_at(t));
    saw_probe = ra.probing();
    const int m = ra.current_mcs();
    ra.on_result(result_for(t, m, 10, 0), ctx_at(t));
    t += 0.004;
  }
  EXPECT_TRUE(saw_probe);
}

TEST(AtherosRaTest, FailedProbeFallsBack) {
  AtherosRa ra;
  double t = 0.0;
  for (int i = 0; i < 3; ++i) {
    const int m = ra.select_mcs(ctx_at(t));
    ra.on_result(result_for(t, m, 10, 10), ctx_at(t));
    t += 0.004;
  }
  const int settled = ra.current_mcs();
  // Clean frames until a probe happens; fail the probe.
  for (int i = 0; i < 400; ++i) {
    const int m = ra.select_mcs(ctx_at(t));
    if (ra.probing()) {
      ra.on_result(result_for(t, m, 4, 4), ctx_at(t));
      EXPECT_EQ(ra.current_mcs(), settled) << "failed probe must revert";
      return;
    }
    ra.on_result(result_for(t, m, 10, 0), ctx_at(t));
    t += 0.004;
  }
  FAIL() << "no probe occurred";
}

TEST(AtherosRaTest, PerEstimateMonotoneAcrossLadder) {
  AtherosRa ra;
  double t = 0.0;
  // Mixed outcomes at several rates.
  for (int i = 0; i < 100; ++i) {
    const int m = ra.select_mcs(ctx_at(t));
    ra.on_result(result_for(t, m, 10, i % 4), ctx_at(t));
    t += 0.004;
  }
  const auto& ladder = atheros_rate_ladder(2);
  for (std::size_t i = 1; i < ladder.size(); ++i) {
    EXPECT_GE(ra.per_estimate(ladder[i]), ra.per_estimate(ladder[i - 1]) - 1e-12)
        << "ladder position " << i;
  }
}

TEST(AtherosRaTest, UnknownMcsThrows) {
  AtherosRa ra;  // dual-stream ladder skips MCS 5
  EXPECT_THROW(ra.per_estimate(5), std::invalid_argument);
}

TEST(MobilityAwareRaTest, StaticModeRidesThroughTransientLoss) {
  // §4.2 optimization 1: with retries=2 in static mode, two consecutive full
  // losses do not drop the rate; the third does.
  AtherosRa ra = make_mobility_aware_atheros_ra();
  const auto mode = MobilityMode::kStatic;
  double t = 0.0;
  const int start = ra.select_mcs(ctx_at(t, mode));
  ra.on_result(result_for(t, start, 10, 10), ctx_at(t, mode));
  EXPECT_EQ(ra.current_mcs(), start);
  t += 0.004;
  ra.on_result(result_for(t, start, 10, 10), ctx_at(t, mode));
  EXPECT_EQ(ra.current_mcs(), start);
  t += 0.004;
  ra.on_result(result_for(t, start, 10, 10), ctx_at(t, mode));
  EXPECT_LT(ra.current_mcs(), start);
}

TEST(MobilityAwareRaTest, MovingAwayDropsImmediately) {
  AtherosRa ra = make_mobility_aware_atheros_ra();
  const auto mode = MobilityMode::kMacroAway;
  const int start = ra.select_mcs(ctx_at(0.0, mode));
  ra.on_result(result_for(0.0, start, 10, 10), ctx_at(0.0, mode));
  EXPECT_LT(ra.current_mcs(), start);
}

TEST(MobilityAwareRaTest, NoHintBehavesLikeStock) {
  AtherosRa aware = make_mobility_aware_atheros_ra();
  AtherosRa stock;
  double t = 0.0;
  for (int i = 0; i < 50; ++i) {
    const int ma = aware.select_mcs(ctx_at(t));
    const int ms = stock.select_mcs(ctx_at(t));
    EXPECT_EQ(ma, ms) << "frame " << i;
    const int failed = (i % 7 == 0) ? 10 : 1;
    aware.on_result(result_for(t, ma, 10, failed), ctx_at(t));
    stock.on_result(result_for(t, ms, 10, failed), ctx_at(t));
    t += 0.004;
  }
}

TEST(MobilityAwareRaTest, TowardProbesSoonerThanAway) {
  // Verify via the parameter table wiring: drive two adapters to the same
  // reduced rate, run clean traffic, count frames until the first probe.
  auto frames_until_probe = [](MobilityMode mode) {
    AtherosRa ra = make_mobility_aware_atheros_ra();
    double t = 0.0;
    for (int i = 0; i < 4; ++i) {
      const int m = ra.select_mcs(ctx_at(t, mode));
      ra.on_result(result_for(t, m, 10, 10), ctx_at(t, mode));
      t += 0.004;
    }
    for (int i = 0; i < 1000; ++i) {
      ra.select_mcs(ctx_at(t, mode));
      if (ra.probing()) return i;
      ra.on_result(result_for(t, ra.current_mcs(), 10, 0), ctx_at(t, mode));
      t += 0.004;
    }
    return 1000;
  };
  EXPECT_LT(frames_until_probe(MobilityMode::kMacroToward),
            frames_until_probe(MobilityMode::kMacroAway));
}

TEST(MobilityAwareRaTest, Name) {
  AtherosRa ra = make_mobility_aware_atheros_ra();
  EXPECT_EQ(ra.name(), "motion-aware-atheros-ra");
  AtherosRa stock;
  EXPECT_EQ(stock.name(), "atheros-ra");
}

}  // namespace
}  // namespace mobiwlan
