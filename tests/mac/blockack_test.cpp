// Tests for the Block ACK window and retransmission bookkeeping.
#include "mac/blockack.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

std::vector<bool> all(bool v, std::size_t n) { return std::vector<bool>(n, v); }

TEST(BlockAckTest, SequencesAreMonotonic) {
  BlockAckWindow w;
  for (int i = 0; i < 5; ++i) w.enqueue(i * 0.001);
  const auto frame = w.next_frame(0.01, 5);
  ASSERT_EQ(frame.size(), 5u);
  for (std::size_t i = 0; i < frame.size(); ++i)
    EXPECT_EQ(frame[i].seq, static_cast<std::uint32_t>(i));
}

TEST(BlockAckTest, FrameLimitedByMaxMpdus) {
  BlockAckWindow w;
  for (int i = 0; i < 10; ++i) w.enqueue(0.0);
  EXPECT_EQ(w.next_frame(0.0, 4).size(), 4u);
}

TEST(BlockAckTest, FrameLimitedByWindow) {
  BlockAckWindow::Config cfg;
  cfg.window_size = 8;
  BlockAckWindow w(cfg);
  for (int i = 0; i < 20; ++i) w.enqueue(0.0);
  EXPECT_EQ(w.next_frame(0.0, 64).size(), 8u);
}

TEST(BlockAckTest, DeliveredMpdusComplete) {
  BlockAckWindow w;
  for (int i = 0; i < 3; ++i) w.enqueue(0.0);
  const auto frame = w.next_frame(0.1, 3);
  const auto outcome = w.on_block_ack(frame, all(true, 3));
  EXPECT_EQ(outcome.delivered.size(), 3u);
  EXPECT_EQ(outcome.dropped.size(), 0u);
  EXPECT_EQ(w.queued(), 0u);
}

TEST(BlockAckTest, FailedMpdusRetransmitFirst) {
  BlockAckWindow w;
  for (int i = 0; i < 4; ++i) w.enqueue(0.0);
  const auto frame = w.next_frame(0.1, 2);            // seqs 0,1
  w.on_block_ack(frame, {false, true});               // 0 failed
  const auto next = w.next_frame(0.2, 3);
  ASSERT_EQ(next.size(), 3u);
  EXPECT_EQ(next[0].seq, 0u);  // retransmission leads
  EXPECT_EQ(next[0].retries, 2);
  EXPECT_EQ(next[1].seq, 2u);
  EXPECT_EQ(next[2].seq, 3u);
}

TEST(BlockAckTest, RetryLimitDrops) {
  BlockAckWindow::Config cfg;
  cfg.retry_limit = 3;
  BlockAckWindow w(cfg);
  w.enqueue(0.0);
  double t = 0.0;
  for (int attempt = 0; attempt < 2; ++attempt) {
    const auto frame = w.next_frame(t, 1);
    ASSERT_EQ(frame.size(), 1u);
    const auto outcome = w.on_block_ack(frame, all(false, 1));
    EXPECT_TRUE(outcome.dropped.empty());
    t += 0.01;
  }
  const auto frame = w.next_frame(t, 1);
  ASSERT_EQ(frame.size(), 1u);
  EXPECT_EQ(frame[0].retries, 3);
  const auto outcome = w.on_block_ack(frame, all(false, 1));
  ASSERT_EQ(outcome.dropped.size(), 1u);
  EXPECT_EQ(outcome.dropped[0].seq, 0u);
  // Dropped MPDU releases the window.
  EXPECT_EQ(w.in_flight(), 0u);
  EXPECT_FALSE(w.window_stalled());
}

TEST(BlockAckTest, WindowAdvancesAfterHeadDelivery) {
  BlockAckWindow::Config cfg;
  cfg.window_size = 4;
  BlockAckWindow w(cfg);
  for (int i = 0; i < 8; ++i) w.enqueue(0.0);
  auto frame = w.next_frame(0.0, 4);                   // seqs 0..3
  w.on_block_ack(frame, all(true, 4));
  frame = w.next_frame(0.1, 4);                        // window slid to 4..7
  ASSERT_EQ(frame.size(), 4u);
  EXPECT_EQ(frame[0].seq, 4u);
}

TEST(BlockAckTest, HeadOfLineFailureBlocksNewSequences) {
  BlockAckWindow::Config cfg;
  cfg.window_size = 4;
  cfg.retry_limit = 10;
  BlockAckWindow w(cfg);
  for (int i = 0; i < 12; ++i) w.enqueue(0.0);
  auto frame = w.next_frame(0.0, 4);                   // 0..3
  w.on_block_ack(frame, {false, true, true, true});    // 0 pins the window
  frame = w.next_frame(0.1, 4);
  // Sequence 0 pins the window at [0, 4); seqs 1-3 are already delivered and
  // the queued seqs 4+ do not fit — the frame carries ONLY the retransmission.
  ASSERT_EQ(frame.size(), 1u);
  EXPECT_EQ(frame[0].seq, 0u);
  EXPECT_EQ(frame[0].retries, 2);
  // Delivering it releases the window for fresh sequences.
  w.on_block_ack(frame, all(true, 1));
  frame = w.next_frame(0.2, 4);
  ASSERT_EQ(frame.size(), 4u);
  EXPECT_EQ(frame[0].seq, 4u);
}

TEST(BlockAckTest, TimestampsPreserved) {
  BlockAckWindow w;
  w.enqueue(1.5);
  const auto frame = w.next_frame(2.0, 1);
  ASSERT_EQ(frame.size(), 1u);
  EXPECT_DOUBLE_EQ(frame[0].enqueue_t, 1.5);
  EXPECT_DOUBLE_EQ(frame[0].first_tx_t, 2.0);
  const auto outcome = w.on_block_ack(frame, all(true, 1));
  EXPECT_DOUBLE_EQ(outcome.delivered[0].enqueue_t, 1.5);
}

TEST(BlockAckTest, NextFrameWhileUnackedThrows) {
  BlockAckWindow w;
  w.enqueue(0.0);
  w.enqueue(0.0);
  (void)w.next_frame(0.0, 1);
  EXPECT_THROW(w.next_frame(0.1, 1), std::logic_error);
}

TEST(BlockAckTest, MismatchedBitmapThrows) {
  BlockAckWindow w;
  w.enqueue(0.0);
  const auto frame = w.next_frame(0.0, 1);
  EXPECT_THROW(w.on_block_ack(frame, all(true, 2)), std::invalid_argument);
}

TEST(BlockAckTest, EmptyFrameWhenNothingQueued) {
  BlockAckWindow w;
  EXPECT_TRUE(w.next_frame(0.0, 8).empty());
}

TEST(BlockAckTest, DegenerateConfigClamped) {
  BlockAckWindow::Config cfg;
  cfg.window_size = 0;
  cfg.retry_limit = 0;
  BlockAckWindow w(cfg);
  EXPECT_GE(w.config().window_size, 1);
  EXPECT_GE(w.config().retry_limit, 1);
}

}  // namespace
}  // namespace mobiwlan
