// Tests for the per-MPDU latency simulator.
#include "mac/latency_sim.hpp"

#include <gtest/gtest.h>

#include "mac/atheros_ra.hpp"

namespace mobiwlan {
namespace {

LatencySimConfig quick_config() {
  LatencySimConfig cfg;
  cfg.duration_s = 5.0;
  cfg.offered_pps = 1500.0;
  return cfg;
}

TEST(LatencySimTest, DeliversTraffic) {
  Rng rng(1);
  Scenario s = make_scenario(MobilityClass::kStatic, rng);
  AtherosRa ra;
  Rng sim_rng(2);
  const auto r = simulate_latency(s, ra, quick_config(), sim_rng);
  EXPECT_GT(r.delivered, 1000);
  EXPECT_GT(r.goodput_mbps, 5.0);
  EXPECT_EQ(static_cast<int>(r.latencies_s.size()), r.delivered);
}

TEST(LatencySimTest, LatenciesPositiveAndBounded) {
  Rng rng(3);
  Scenario s = make_scenario(MobilityClass::kMicro, rng);
  AtherosRa ra;
  Rng sim_rng(4);
  const auto r = simulate_latency(s, ra, quick_config(), sim_rng);
  ASSERT_FALSE(r.latencies_s.empty());
  EXPECT_GT(r.latencies_s.min(), 0.0);
  EXPECT_LT(r.latencies_s.median(), 1.0);  // not queue-collapsed
}

TEST(LatencySimTest, GoodputMatchesOfferedLoadWhenUnderCapacity) {
  Rng rng(5);
  Scenario s = make_scenario(MobilityClass::kStatic, rng);
  AtherosRa ra;
  LatencySimConfig cfg = quick_config();
  cfg.offered_pps = 1000.0;  // 12 Mbps, far below capacity
  Rng sim_rng(6);
  const auto r = simulate_latency(s, ra, cfg, sim_rng);
  EXPECT_NEAR(r.goodput_mbps, 1000.0 * 1500 * 8 / 1e6, 1.5);
  EXPECT_EQ(r.dropped, 0);
}

TEST(LatencySimTest, EndOfRunAccountingConserves) {
  // Every CBR arrival in [0, duration_s) is accounted for exactly once.
  for (auto cls : {MobilityClass::kStatic, MobilityClass::kMacro}) {
    Rng rng(50 + static_cast<int>(cls));
    Scenario s = make_scenario(cls, rng);
    AtherosRa ra;
    const LatencySimConfig cfg = quick_config();
    Rng sim_rng(60 + static_cast<int>(cls));
    const auto r = simulate_latency(s, ra, cfg, sim_rng);
    // The analytic arrival count, accumulated the same way the sim steps
    // its arrival clock (FP accumulation and all).
    int expected_offered = 0;
    for (double a = 0.0; a < cfg.duration_s; a += 1.0 / cfg.offered_pps)
      ++expected_offered;
    EXPECT_EQ(r.offered, expected_offered);
    EXPECT_EQ(r.delivered + r.dropped + r.leftover, r.offered);
  }
}

TEST(LatencySimTest, NoDeliveryCountedPastTheHorizon) {
  // Regression: with a horizon shorter than a single frame exchange, the
  // first frame used to be acked past duration_s and still counted into
  // delivered_bytes (while goodput divides by duration_s). Now the final
  // frame is clamped: nothing is delivered, everything offered is leftover.
  Rng rng(70);
  Scenario s = make_scenario(MobilityClass::kStatic, rng);
  AtherosRa ra;
  LatencySimConfig cfg = quick_config();
  cfg.duration_s = 1e-4;       // shorter than any A-MPDU exchange
  cfg.offered_pps = 1e6;       // 100 arrivals inside the horizon
  Rng sim_rng(71);
  const auto r = simulate_latency(s, ra, cfg, sim_rng);
  int expected_offered = 0;
  for (double a = 0.0; a < cfg.duration_s; a += 1.0 / cfg.offered_pps)
    ++expected_offered;
  EXPECT_EQ(r.offered, expected_offered);
  EXPECT_GT(r.offered, 90);
  EXPECT_EQ(r.delivered, 0);
  EXPECT_EQ(r.dropped, 0);
  EXPECT_EQ(r.leftover, r.offered);
  EXPECT_EQ(r.goodput_mbps, 0.0);
}

TEST(LatencySimTest, MobilityInflatesTailLatencyAtLongAggregation) {
  // The mechanism behind the §9 real-time concern: under macro-mobility,
  // 8 ms frames lose their tails, and retransmission head-of-line blocking
  // shows up in p95 latency relative to 2 ms frames.
  auto p95 = [](double limit) {
    double total = 0.0;
    for (int i = 0; i < 3; ++i) {
      Rng rng(10 + i);
      Scenario s = make_scenario(MobilityClass::kMacro, rng);
      AtherosRa ra;
      LatencySimConfig cfg = quick_config();
      cfg.aggregation.fixed_limit_s = limit;
      Rng sim_rng(20 + i);
      total += simulate_latency(s, ra, cfg, sim_rng).latencies_s.quantile(0.95);
    }
    return total / 3.0;
  };
  EXPECT_GT(p95(8e-3), p95(2e-3));
}

TEST(LatencySimTest, AdaptiveAggregationUsesMode) {
  Rng rng(30);
  Scenario s = make_scenario(MobilityClass::kMacro, rng);
  AtherosRa ra = make_mobility_aware_atheros_ra();
  LatencySimConfig cfg = quick_config();
  cfg.aggregation.adaptive = true;
  Rng sim_rng(31);
  const auto r = simulate_latency(s, ra, cfg, sim_rng);
  EXPECT_GT(r.delivered, 500);
}

TEST(LatencySimTest, DeterministicGivenSeeds) {
  auto run = [] {
    Rng rng(40);
    Scenario s = make_scenario(MobilityClass::kMicro, rng);
    AtherosRa ra;
    Rng sim_rng(41);
    return simulate_latency(s, ra, quick_config(), sim_rng).latencies_s.median();
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

}  // namespace
}  // namespace mobiwlan
