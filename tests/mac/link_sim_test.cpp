// Tests for the frame-level link simulator.
#include "mac/link_sim.hpp"

#include <gtest/gtest.h>

#include "mac/atheros_ra.hpp"
#include "mac/esnr_ra.hpp"
#include "mac/sensor_hint_ra.hpp"

namespace mobiwlan {
namespace {

LinkSimConfig short_config() {
  LinkSimConfig cfg;
  cfg.duration_s = 4.0;
  return cfg;
}

TEST(LinkSimTest, ProducesTraffic) {
  Rng rng(1);
  Scenario s = make_scenario(MobilityClass::kStatic, rng);
  AtherosRa ra;
  Rng frame_rng(2);
  const LinkSimResult r = simulate_link(s, ra, short_config(), frame_rng);
  EXPECT_GT(r.goodput_mbps, 1.0);
  EXPECT_GT(r.frames, 100);
  EXPECT_GT(r.mpdus_sent, r.mpdus_lost);
}

TEST(LinkSimTest, DeterministicWithSameSeeds) {
  auto run = [] {
    Rng rng(10);
    Scenario s = make_scenario(MobilityClass::kMacro, rng);
    AtherosRa ra;
    Rng frame_rng(11);
    return simulate_link(s, ra, short_config(), frame_rng).goodput_mbps;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(LinkSimTest, IdenticalChannelAcrossSchemes) {
  // The §4.3 emulation property: rebuilding the scenario with the same seed
  // exposes the same channel to different rate adapters.
  Rng rng1(20);
  Rng rng2(20);
  Scenario a = make_scenario(MobilityClass::kMacro, rng1);
  Scenario b = make_scenario(MobilityClass::kMacro, rng2);
  EXPECT_DOUBLE_EQ(a.channel->snr_db(1.0), b.channel->snr_db(1.0));
  EXPECT_DOUBLE_EQ(a.channel->true_distance(2.5), b.channel->true_distance(2.5));
}

TEST(LinkSimTest, MeanPerConsistentWithCounts) {
  Rng rng(3);
  Scenario s = make_scenario(MobilityClass::kMicro, rng);
  AtherosRa ra;
  Rng frame_rng(4);
  const LinkSimResult r = simulate_link(s, ra, short_config(), frame_rng);
  EXPECT_NEAR(r.mean_per,
              static_cast<double>(r.mpdus_lost) / r.mpdus_sent, 1e-12);
}

TEST(LinkSimTest, ClassifierModeSeriesPopulatedWhenEnabled) {
  Rng rng(5);
  Scenario s = make_scenario(MobilityClass::kMacro, rng);
  AtherosRa ra;
  LinkSimConfig cfg = short_config();
  cfg.duration_s = 8.0;
  Rng frame_rng(6);
  const LinkSimResult r = simulate_link(s, ra, cfg, frame_rng);
  EXPECT_FALSE(r.mode_series.empty());
}

TEST(LinkSimTest, NoClassifierNoModeSeries) {
  Rng rng(7);
  Scenario s = make_scenario(MobilityClass::kMacro, rng);
  AtherosRa ra;
  LinkSimConfig cfg = short_config();
  cfg.run_classifier = false;
  Rng frame_rng(8);
  const LinkSimResult r = simulate_link(s, ra, cfg, frame_rng);
  EXPECT_TRUE(r.mode_series.empty());
}

TEST(LinkSimTest, McsSeriesStartsAtTopRate) {
  Rng rng(9);
  Scenario s = make_scenario(MobilityClass::kStatic, rng);
  AtherosRa ra;
  Rng frame_rng(10);
  const LinkSimResult r = simulate_link(s, ra, short_config(), frame_rng);
  ASSERT_FALSE(r.mcs_series.empty());
  EXPECT_EQ(r.mcs_series.front().second, 15);
}

TEST(LinkSimTest, SensorHintPlumbedOnlyWhenEnabled) {
  Rng rng1(12);
  Scenario s = make_scenario(MobilityClass::kMacro, rng1);
  SensorHintRa ra;
  LinkSimConfig cfg = short_config();
  cfg.provide_sensor_hint = true;
  cfg.run_classifier = false;
  Rng frame_rng(13);
  EXPECT_GT(simulate_link(s, ra, cfg, frame_rng).goodput_mbps, 1.0);
}

TEST(LinkSimTest, PhyFeedbackEnablesEsnr) {
  Rng rng(14);
  Scenario s = make_scenario(MobilityClass::kStatic, rng);
  EsnrRa ra;
  LinkSimConfig cfg = short_config();
  cfg.provide_phy_feedback = true;
  cfg.run_classifier = false;
  Rng frame_rng(15);
  const LinkSimResult r = simulate_link(s, ra, cfg, frame_rng);
  EXPECT_GT(r.goodput_mbps, 5.0);
  EXPECT_LT(r.mean_per, 0.5);
}

TEST(LinkSimTest, TcpStallReducesGoodput) {
  // Isolate the stall mechanism from rate-adaptation side effects (a stall
  // also shields the RA from burst-induced rate collapse) by pinning the
  // rate: EsnrRa with no feedback transmits MCS 0 throughout.
  auto run = [](double stall) {
    double total = 0.0;
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      Rng rng(16 + seed);
      Scenario s = make_scenario(MobilityClass::kStatic, rng);
      EsnrRa ra;  // never fed feedback -> fixed at MCS 0
      LinkSimConfig cfg;
      cfg.duration_s = 5.0;
      cfg.tcp_stall_s = stall;
      cfg.interference_burst_rate_hz = 3.0;  // force stall-triggering bursts
      cfg.interference_burst_min_s = 15e-3;
      cfg.interference_burst_max_s = 40e-3;
      Rng frame_rng(17 + seed);
      total += simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
    }
    return total;
  };
  EXPECT_LT(run(0.08), run(0.0) * 0.99);
}

TEST(LinkSimTest, InterferenceBurstsCauseFullLosses) {
  auto full_losses = [](double rate) {
    Rng rng(18);
    Scenario s = make_scenario(MobilityClass::kStatic, rng);
    AtherosRa ra;
    LinkSimConfig cfg;
    cfg.duration_s = 8.0;
    cfg.interference_burst_rate_hz = rate;
    Rng frame_rng(19);
    return simulate_link(s, ra, cfg, frame_rng).full_loss_events;
  };
  EXPECT_GT(full_losses(5.0), full_losses(0.0));
}

TEST(LinkSimTest, AggressiveAggregationHurtsWalkingClient) {
  // The §5 premise at the system level: under macro-mobility, an 8 ms limit
  // underperforms a 2 ms limit.
  auto run = [](double limit) {
    double total = 0.0;
    for (int i = 0; i < 4; ++i) {
      Rng rng(30 + i);
      Scenario s = make_scenario(MobilityClass::kMacro, rng);
      AtherosRa ra;
      LinkSimConfig cfg;
      cfg.duration_s = 6.0;
      cfg.aggregation.fixed_limit_s = limit;
      cfg.interference_burst_rate_hz = 0.0;
      Rng frame_rng(40 + i);
      total += simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
    }
    return total;
  };
  EXPECT_GT(run(2e-3), run(8e-3));
}

TEST(LinkSimTest, AdaptiveAggregationUsesClassifier) {
  Rng rng(50);
  Scenario s = make_scenario(MobilityClass::kMacro, rng);
  AtherosRa ra;
  LinkSimConfig cfg;
  cfg.duration_s = 6.0;
  cfg.aggregation.adaptive = true;
  cfg.aggregation.fixed_limit_s = 8e-3;  // fallback before classification
  Rng frame_rng(51);
  EXPECT_GT(simulate_link(s, ra, cfg, frame_rng).goodput_mbps, 1.0);
}

TEST(LinkSimTest, HintLatencyZeroMatchesDirectClassifier) {
  auto run = [](double latency) {
    Rng rng(60);
    Scenario s = make_scenario(MobilityClass::kMacro, rng);
    AtherosRa ra = make_mobility_aware_atheros_ra();
    LinkSimConfig cfg;
    cfg.duration_s = 6.0;
    cfg.mobility_hint_latency_s = latency;
    Rng frame_rng(61);
    return simulate_link(s, ra, cfg, frame_rng).goodput_mbps;
  };
  // A vanishingly small advertisement period must behave like direct access.
  EXPECT_NEAR(run(0.0), run(1e-6), run(0.0) * 0.02);
}

TEST(LinkSimTest, StaleHintsStillFunctional) {
  Rng rng(62);
  Scenario s = make_scenario(MobilityClass::kMacro, rng);
  AtherosRa ra = make_mobility_aware_atheros_ra();
  LinkSimConfig cfg;
  cfg.duration_s = 6.0;
  cfg.mobility_hint_latency_s = 2.0;  // very stale advertisements
  Rng frame_rng(63);
  EXPECT_GT(simulate_link(s, ra, cfg, frame_rng).goodput_mbps, 1.0);
}

}  // namespace
}  // namespace mobiwlan
