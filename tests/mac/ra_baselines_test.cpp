// Tests for the comparison rate-adaptation schemes: SensorHint (RapidSample/
// SampleRate), SoftRate, and ESNR.
#include <gtest/gtest.h>

#include "mac/esnr_ra.hpp"
#include "mac/sensor_hint_ra.hpp"
#include "mac/softrate_ra.hpp"
#include "phy/mcs.hpp"

namespace mobiwlan {
namespace {

TxContext moving_ctx(double t, bool moving) {
  TxContext ctx;
  ctx.t = t;
  ctx.sensor_in_motion = moving;
  return ctx;
}

FrameResult result_for(double t, int mcs_index, int n_mpdus, int n_failed) {
  FrameResult r;
  r.t = t;
  r.mcs = mcs_index;
  r.n_mpdus = n_mpdus;
  r.n_failed = n_failed;
  r.block_ack_received = n_failed < n_mpdus;
  return r;
}

// ---------------- SensorHintRa ----------------

TEST(SensorHintRaTest, MobileLossDropsImmediately) {
  SensorHintRa ra;
  const int first = ra.select_mcs(moving_ctx(0.0, true));
  ra.on_result(result_for(0.0, first, 10, 5), moving_ctx(0.0, true));
  const int next = ra.select_mcs(moving_ctx(0.001, true));
  EXPECT_LT(next, first);
}

TEST(SensorHintRaTest, MobileProbesUpAfterQuietPeriod) {
  SensorHintRa ra;
  double t = 0.0;
  int current = ra.select_mcs(moving_ctx(t, true));
  ra.on_result(result_for(t, current, 10, 10), moving_ctx(t, true));
  t += 0.004;
  current = ra.select_mcs(moving_ctx(t, true));
  // Run loss-free for 100 ms; RapidSample must have climbed.
  for (int i = 0; i < 25; ++i) {
    ra.on_result(result_for(t, current, 10, 0), moving_ctx(t, true));
    t += 0.004;
    current = ra.select_mcs(moving_ctx(t, true));
  }
  EXPECT_GT(current, 0);
}

TEST(SensorHintRaTest, StaticConvergesToGoodRate) {
  // SampleRate half: feed outcomes consistent with "MCS 11 is optimal".
  SensorHintRa ra;
  double t = 0.0;
  for (int i = 0; i < 300; ++i) {
    const int m = ra.select_mcs(moving_ctx(t, false));
    const int failed = mcs(m).rate_mbps > mcs(11).rate_mbps ? 9 : 0;
    ra.on_result(result_for(t, m, 10, failed), moving_ctx(t, false));
    t += 0.004;
  }
  const int settled = ra.select_mcs(moving_ctx(t, false));
  EXPECT_EQ(settled, 11);
}

TEST(SensorHintRaTest, StaticSamplesOccasionally) {
  SensorHintRa ra;
  double t = 0.0;
  bool sampled = false;
  int settled = -1;
  for (int i = 0; i < 100; ++i) {
    const int m = ra.select_mcs(moving_ctx(t, false));
    if (settled >= 0 && m != settled) sampled = true;
    if (i == 30) settled = m;
    ra.on_result(result_for(t, m, 10, m > 9 ? 9 : 0), moving_ctx(t, false));
    t += 0.004;
  }
  EXPECT_TRUE(sampled);
}

TEST(SensorHintRaTest, MissingHintTreatedAsStatic) {
  SensorHintRa ra;
  TxContext ctx;
  ctx.t = 0.0;
  EXPECT_NO_THROW(ra.select_mcs(ctx));
}

TEST(SensorHintRaTest, Name) {
  SensorHintRa ra;
  EXPECT_EQ(ra.name(), "rapidsample");
}

// ---------------- SoftRateRa ----------------

TEST(SoftRateRaTest, HighBerStepsDown) {
  SoftRateRa ra;
  TxContext first;
  first.t = 0.0;
  const int start = ra.select_mcs(first);
  TxContext fed;
  fed.t = 0.004;
  fed.feedback_ber = 1e-3;
  EXPECT_LT(ra.select_mcs(fed), start);
}

TEST(SoftRateRaTest, LowBerStepsUp) {
  SoftRateRa ra;
  TxContext first;
  first.t = 0.0;
  const int start = ra.select_mcs(first);
  TxContext fed;
  fed.t = 0.004;
  fed.feedback_ber = 1e-12;
  EXPECT_GT(ra.select_mcs(fed), start);
}

TEST(SoftRateRaTest, MidBandHolds) {
  SoftRateRa ra;
  TxContext first;
  first.t = 0.0;
  const int start = ra.select_mcs(first);
  TxContext fed;
  fed.t = 0.004;
  fed.feedback_ber = 1e-6;  // between ber_low and ber_high
  EXPECT_EQ(ra.select_mcs(fed), start);
}

TEST(SoftRateRaTest, StepsOneRateAtATime) {
  SoftRateRa ra;
  TxContext first;
  first.t = 0.0;
  const int start = ra.select_mcs(first);
  TxContext fed;
  fed.t = 0.004;
  fed.feedback_ber = 0.4;  // catastrophic, but still only one step
  const int next = ra.select_mcs(fed);
  const auto& ladder = atheros_rate_ladder(2);
  const auto pos_start = std::find(ladder.begin(), ladder.end(), start);
  const auto pos_next = std::find(ladder.begin(), ladder.end(), next);
  EXPECT_EQ(pos_start - pos_next, 1);
}

TEST(SoftRateRaTest, TotalLossWithoutFeedbackStepsDown) {
  SoftRateRa ra;
  TxContext ctx;
  ctx.t = 0.0;
  const int start = ra.select_mcs(ctx);
  ra.on_result(result_for(0.0, start, 10, 10), ctx);
  TxContext next;
  next.t = 0.004;
  EXPECT_LT(ra.select_mcs(next), start);
}

TEST(SoftRateRaTest, ClampsAtLadderEnds) {
  SoftRateRa ra;
  TxContext fed;
  fed.feedback_ber = 0.4;
  for (int i = 0; i < 30; ++i) {
    fed.t = i * 0.004;
    ra.select_mcs(fed);
  }
  EXPECT_EQ(ra.select_mcs(fed), 0);
  fed.feedback_ber = 1e-15;
  int last = 0;
  for (int i = 0; i < 30; ++i) {
    fed.t = 1.0 + i * 0.004;
    last = ra.select_mcs(fed);
  }
  EXPECT_EQ(last, 15);
}

// ---------------- EsnrRa ----------------

TEST(EsnrRaTest, PicksOracleRateFromFeedback) {
  EsnrRa ra;
  TxContext ctx;
  ctx.t = 0.0;
  ctx.feedback_esnr_db = 35.0;
  EXPECT_EQ(ra.select_mcs(ctx), 15);
  ctx.feedback_esnr_db = 6.0;
  EXPECT_LE(ra.select_mcs(ctx), 1);
}

TEST(EsnrRaTest, SingleObservationPinsRate) {
  // §4.3: ESNR "can indicate the bit-rate of the channel using a single
  // observation" — one feedback moves it multiple steps at once.
  EsnrRa ra;
  TxContext hi;
  hi.feedback_esnr_db = 34.0;
  const int top = ra.select_mcs(hi);
  TxContext lo;
  lo.feedback_esnr_db = 12.0;
  const int bottom = ra.select_mcs(lo);
  EXPECT_GT(top - bottom, 3);
}

TEST(EsnrRaTest, MarginBacksOff) {
  EsnrRa::Config tight;
  tight.margin_db = 0.0;
  EsnrRa::Config loose;
  loose.margin_db = 4.0;
  EsnrRa a(tight);
  EsnrRa b(loose);
  TxContext ctx;
  ctx.feedback_esnr_db = 21.0;
  EXPECT_GE(a.select_mcs(ctx), b.select_mcs(ctx));
}

TEST(EsnrRaTest, NoFeedbackHoldsLastRate) {
  EsnrRa ra;
  TxContext fed;
  fed.feedback_esnr_db = 25.0;
  const int rate = ra.select_mcs(fed);
  TxContext none;
  EXPECT_EQ(ra.select_mcs(none), rate);
}

TEST(EsnrRaTest, TotalLossBacksOffOneRate) {
  EsnrRa ra;
  TxContext fed;
  fed.feedback_esnr_db = 30.0;
  const int rate = ra.select_mcs(fed);
  ra.on_result(result_for(0.0, rate, 10, 10), fed);
  TxContext none;
  EXPECT_EQ(ra.select_mcs(none), rate - 1);
}

}  // namespace
}  // namespace mobiwlan
