// Tests for the multi-AP deployment.
#include "net/deployment.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

TEST(DeploymentTest, CorridorLayoutSpacing) {
  const auto layout = WlanDeployment::corridor_layout(6, 25.0);
  ASSERT_EQ(layout.size(), 6u);
  for (std::size_t i = 1; i < layout.size(); ++i) {
    EXPECT_DOUBLE_EQ(layout[i].x - layout[i - 1].x, 25.0);
    EXPECT_DOUBLE_EQ(layout[i].y, 0.0);
  }
}

TEST(DeploymentTest, OneChannelPerAp) {
  Rng rng(1);
  auto traj = std::make_shared<StaticTrajectory>(Vec2{10.0, 3.0});
  WlanDeployment wlan(WlanDeployment::corridor_layout(4), traj, ChannelConfig{}, rng);
  EXPECT_EQ(wlan.n_aps(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(wlan.channel(i).ap_position().x, wlan.ap_position(i).x);
  }
}

TEST(DeploymentTest, StrongestApIsNearbyOne) {
  // With shadowing the nearest AP is not always strongest, but over several
  // random deployments the strongest AP should be among the closest.
  int near_wins = 0;
  for (int trial = 0; trial < 10; ++trial) {
    Rng rng(100 + trial);
    auto traj = std::make_shared<StaticTrajectory>(Vec2{2.0, 1.0});
    WlanDeployment wlan(WlanDeployment::corridor_layout(6, 30.0), traj,
                        ChannelConfig{}, rng);
    if (wlan.strongest_ap(0.0) <= 1) ++near_wins;
  }
  EXPECT_GE(near_wins, 8);
}

TEST(DeploymentTest, ChannelsSeeTheSameClient) {
  Rng rng(2);
  auto traj = WlanDeployment::corridor_walk(rng, 3, 20.0);
  WlanDeployment wlan(WlanDeployment::corridor_layout(3, 20.0), traj,
                      ChannelConfig{}, rng);
  // The trajectory is shared: distance differences equal geometry differences.
  const Vec2 client = traj->position(5.0);
  for (std::size_t ap = 0; ap < 3; ++ap) {
    EXPECT_NEAR(wlan.channel(ap).true_distance(5.0),
                distance(wlan.ap_position(ap), client), 1e-9);
  }
}

TEST(DeploymentTest, CorridorWalkStaysNearCorridor) {
  Rng rng(3);
  auto traj = WlanDeployment::corridor_walk(rng, 6, 28.0);
  for (double t = 0.0; t < 200.0; t += 1.0) {
    const Vec2 p = traj->position(t);
    EXPECT_GE(p.x, -7.0);
    EXPECT_LE(p.x, 5.0 * 28.0 + 7.0);
    EXPECT_LE(std::abs(p.y), 9.5);
  }
}

TEST(DeploymentTest, IndependentScattererFieldsPerAp) {
  Rng rng(4);
  auto traj = std::make_shared<StaticTrajectory>(Vec2{30.0, 0.0});
  // Two co-located APs still see different multipath (different furniture
  // around each radio path) — their instantaneous SNR differs by shadowing
  // and scatterer draws.
  std::vector<Vec2> both{{0.0, 0.0}, {0.0, 0.0}};
  WlanDeployment wlan(both, traj, ChannelConfig{}, rng);
  EXPECT_NE(wlan.channel(0).snr_db(0.0), wlan.channel(1).snr_db(0.0));
}

}  // namespace
}  // namespace mobiwlan
