// Tests for the three roaming schemes (§3).
#include "net/roaming.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

WlanDeployment walking_deployment(std::uint64_t seed, Rng& rng) {
  Rng seeded(seed);
  rng = seeded;
  auto traj = WlanDeployment::corridor_walk(rng);
  return WlanDeployment(WlanDeployment::corridor_layout(), traj, ChannelConfig{},
                        rng);
}

RoamingConfig short_config() {
  RoamingConfig cfg;
  cfg.duration_s = 40.0;
  return cfg;
}

TEST(RoamingTest, AllSchemesProduceThroughput) {
  for (auto scheme : {RoamingScheme::kDefault, RoamingScheme::kSensorHint,
                      RoamingScheme::kMotionAware}) {
    Rng rng(0);
    WlanDeployment wlan = walking_deployment(1, rng);
    Rng sim_rng(2);
    const RoamingResult r = simulate_roaming(wlan, scheme, short_config(), sim_rng);
    EXPECT_GT(r.mean_throughput_mbps, 5.0) << to_string(scheme);
    EXPECT_FALSE(r.associations.empty());
  }
}

TEST(RoamingTest, StaticClientNeverRoams) {
  // §3.1 intuition 1: no roaming pressure without motion.
  Rng rng(3);
  auto traj = std::make_shared<StaticTrajectory>(Vec2{20.0, 2.0});
  WlanDeployment wlan(WlanDeployment::corridor_layout(), traj, ChannelConfig{}, rng);
  for (auto scheme : {RoamingScheme::kDefault, RoamingScheme::kMotionAware}) {
    Rng sim_rng(4);
    const RoamingResult r = simulate_roaming(wlan, scheme, short_config(), sim_rng);
    EXPECT_EQ(r.handoffs, 0) << to_string(scheme);
  }
}

TEST(RoamingTest, WalkingClientEventuallyRoams) {
  Rng rng(0);
  WlanDeployment wlan = walking_deployment(5, rng);
  RoamingConfig cfg = short_config();
  cfg.duration_s = 90.0;
  Rng sim_rng(6);
  const RoamingResult r =
      simulate_roaming(wlan, RoamingScheme::kMotionAware, cfg, sim_rng);
  EXPECT_GT(r.handoffs, 0);
}

TEST(RoamingTest, HandoffsCostOutage) {
  Rng rng(0);
  WlanDeployment wlan = walking_deployment(7, rng);
  RoamingConfig cfg = short_config();
  cfg.duration_s = 90.0;
  Rng sim_rng(8);
  const RoamingResult r =
      simulate_roaming(wlan, RoamingScheme::kDefault, cfg, sim_rng);
  EXPECT_NEAR(r.outage_s, r.handoffs * cfg.handoff_outage_s, 1e-9);
}

TEST(RoamingTest, SensorHintScansCostOutageEvenWithoutHandoff) {
  Rng rng(0);
  WlanDeployment wlan = walking_deployment(9, rng);
  Rng sim_rng(10);
  const RoamingResult r =
      simulate_roaming(wlan, RoamingScheme::kSensorHint, short_config(), sim_rng);
  EXPECT_GT(r.outage_s, r.handoffs * short_config().handoff_outage_s - 1e-9);
}

TEST(RoamingTest, ScanTriggeredHandoffOutageIsExtendOnly) {
  // Regression: the periodic sensor-hint scan used to add scan_cost_s to
  // outage_s and then an immediate handoff added handoff_outage_s on top
  // while *overwriting* the enforcement window — reported outage exceeded
  // (or with a short handoff, the enforced window undercut) the realized
  // dead air. With handoff_outage_s < scan_cost_s the realized window per
  // scan-triggered handoff is exactly the scan cost, so outage_s must be
  // scans * scan_cost_s — the old code reported extra handoff outage on top.
  Rng rng(0);
  WlanDeployment wlan = walking_deployment(9, rng);
  RoamingConfig cfg = short_config();
  cfg.duration_s = 90.0;
  cfg.rssi_threshold_dbm = -200.0;  // no threshold-triggered handoffs
  cfg.handoff_outage_s = 0.05;      // shorter than the 0.12 s scan window
  Rng sim_rng(10);
  const RoamingResult r =
      simulate_roaming(wlan, RoamingScheme::kSensorHint, cfg, sim_rng);
  ASSERT_GT(r.scans, 0);
  ASSERT_GT(r.handoffs, 0);  // the walk must actually trigger steered scans
  EXPECT_NEAR(r.outage_s, r.scans * cfg.scan_cost_s, 1e-9);
}

TEST(RoamingTest, MotionAwareBeatsDefaultOnMedianWalk) {
  // The headline §3.2 comparison, on a small sample.
  double aware_total = 0.0;
  double default_total = 0.0;
  for (int i = 0; i < 5; ++i) {
    for (int scheme = 0; scheme < 2; ++scheme) {
      Rng rng(0);
      WlanDeployment wlan = walking_deployment(50 + i, rng);
      Rng sim_rng(60 + i);
      const RoamingResult r = simulate_roaming(
          wlan, scheme == 0 ? RoamingScheme::kDefault : RoamingScheme::kMotionAware,
          short_config(), sim_rng);
      (scheme == 0 ? default_total : aware_total) += r.mean_throughput_mbps;
    }
  }
  EXPECT_GT(aware_total, default_total);
}

TEST(RoamingTest, AssociationsTimeOrdered) {
  Rng rng(0);
  WlanDeployment wlan = walking_deployment(11, rng);
  RoamingConfig cfg = short_config();
  cfg.duration_s = 90.0;
  Rng sim_rng(12);
  const RoamingResult r =
      simulate_roaming(wlan, RoamingScheme::kMotionAware, cfg, sim_rng);
  for (std::size_t i = 1; i < r.associations.size(); ++i) {
    EXPECT_GE(r.associations[i].first, r.associations[i - 1].first);
    EXPECT_NE(r.associations[i].second, r.associations[i - 1].second);
  }
}

TEST(OracleVsStickTest, OracleAtLeastAsGood) {
  for (int i = 0; i < 5; ++i) {
    Rng rng(0);
    WlanDeployment wlan = walking_deployment(70 + i, rng);
    const auto [oracle, stick] = oracle_vs_stick(wlan, short_config());
    EXPECT_GE(oracle, stick - 1e-9);
  }
}

TEST(OracleVsStickTest, StaticClientGainsNothing) {
  // §3.1 / Fig. 7a: for a static client the two are nearly identical.
  Rng rng(13);
  auto traj = std::make_shared<StaticTrajectory>(Vec2{15.0, 2.0});
  WlanDeployment wlan(WlanDeployment::corridor_layout(), traj, ChannelConfig{}, rng);
  RoamingConfig cfg = short_config();
  cfg.duration_s = 20.0;
  const auto [oracle, stick] = oracle_vs_stick(wlan, cfg);
  EXPECT_LT(oracle / std::max(stick, 1.0) - 1.0, 0.05);
}

TEST(OracleVsStickTest, WalkingClientGains) {
  double gain_sum = 0.0;
  for (int i = 0; i < 5; ++i) {
    Rng rng(0);
    WlanDeployment wlan = walking_deployment(90 + i, rng);
    RoamingConfig cfg = short_config();
    cfg.duration_s = 60.0;
    const auto [oracle, stick] = oracle_vs_stick(wlan, cfg);
    gain_sum += oracle / std::max(stick, 1.0) - 1.0;
  }
  EXPECT_GT(gain_sum / 5.0, 0.05);
}

}  // namespace
}  // namespace mobiwlan
