// Tests for the mobility-aware downlink schedulers (§9 extension).
#include "net/scheduler.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

ClientSlotInfo client(double rate, std::optional<MobilityMode> mode = std::nullopt) {
  ClientSlotInfo c;
  c.rate_mbps = rate;
  c.mobility = mode;
  return c;
}

TEST(RoundRobinTest, CyclesThroughClients) {
  RoundRobinScheduler s;
  const std::vector<ClientSlotInfo> clients{client(10), client(20), client(30)};
  for (std::size_t expect : {0u, 1u, 2u, 0u}) {
    const std::size_t who = s.pick(clients);
    EXPECT_EQ(who, expect);
    s.on_served(clients, who);
  }
}

TEST(RoundRobinTest, EmptyThrows) {
  RoundRobinScheduler s;
  EXPECT_THROW(s.pick({}), std::invalid_argument);
}

TEST(ProportionalFairTest, PrefersBetterRateInitially) {
  ProportionalFairScheduler s;
  const std::vector<ClientSlotInfo> clients{client(10), client(50)};
  EXPECT_EQ(s.pick(clients), 1u);
}

TEST(ProportionalFairTest, StarvedClientEventuallyServed) {
  ProportionalFairScheduler s;
  const std::vector<ClientSlotInfo> clients{client(10), client(50)};
  bool served_slow = false;
  for (int slot = 0; slot < 200 && !served_slow; ++slot) {
    const std::size_t who = s.pick(clients);
    s.on_served(clients, who);
    if (who == 0) served_slow = true;
  }
  EXPECT_TRUE(served_slow);
}

TEST(ProportionalFairTest, LongRunSharesAreFairish) {
  // With equal average channels, both clients get comparable service.
  ProportionalFairScheduler s;
  int served[2] = {0, 0};
  for (int slot = 0; slot < 2000; ++slot) {
    const std::vector<ClientSlotInfo> clients{
        client(20.0 + 10.0 * ((slot / 7) % 2)),
        client(20.0 + 10.0 * ((slot / 11) % 2))};
    const std::size_t who = s.pick(clients);
    s.on_served(clients, who);
    ++served[who];
  }
  const double share0 = served[0] / 2000.0;
  EXPECT_GT(share0, 0.3);
  EXPECT_LT(share0, 0.7);
}

TEST(MobilityAwareTest, RidesMobileClientPeaks) {
  // One static client at a flat 30 Mbps, one macro client oscillating
  // 10 <-> 50 Mbps. The mobility-aware scheduler should serve the mobile
  // client mostly on its peaks.
  MobilityAwareScheduler s;
  int mobile_served_at_peak = 0;
  int mobile_served_at_trough = 0;
  for (int slot = 0; slot < 4000; ++slot) {
    const bool peak = (slot / 10) % 2 == 0;
    const std::vector<ClientSlotInfo> clients{
        client(30.0, MobilityMode::kStatic),
        client(peak ? 50.0 : 10.0, MobilityMode::kMacroAway)};
    const std::size_t who = s.pick(clients);
    s.on_served(clients, who);
    if (who == 1) (peak ? mobile_served_at_peak : mobile_served_at_trough)++;
  }
  EXPECT_GT(mobile_served_at_peak, 3 * std::max(1, mobile_served_at_trough));
}

TEST(MobilityAwareTest, BeatsRoundRobinOnMixedClients) {
  // Total delivered bits: opportunism on the mobile client's swings should
  // beat blind alternation while still serving the static client.
  auto run = [](Scheduler& s) {
    double total = 0.0;
    int static_served = 0;
    for (int slot = 0; slot < 4000; ++slot) {
      const bool peak = (slot / 10) % 2 == 0;
      const std::vector<ClientSlotInfo> clients{
          client(30.0, MobilityMode::kStatic),
          client(peak ? 50.0 : 10.0, MobilityMode::kMacroAway)};
      const std::size_t who = s.pick(clients);
      s.on_served(clients, who);
      total += clients[who].rate_mbps;
      if (who == 0) ++static_served;
    }
    return std::make_pair(total, static_served);
  };
  RoundRobinScheduler rr;
  MobilityAwareScheduler ma;
  const auto [rr_total, rr_static] = run(rr);
  const auto [ma_total, ma_static] = run(ma);
  EXPECT_GT(ma_total, rr_total);
  // Fairness is preserved: the static client still gets a material share.
  EXPECT_GT(ma_static, 4000 / 4);
}

TEST(SchedulerStateTest, PickTwiceEqualsPickOnce) {
  // pick() is a pure decision: probing a slot any number of times must not
  // change the answer, for every scheduler variant.
  RoundRobinScheduler rr;
  ProportionalFairScheduler pf;
  MobilityAwareScheduler ma;
  const std::vector<ClientSlotInfo> clients{
      client(30.0, MobilityMode::kStatic),
      client(45.0, MobilityMode::kMacroAway), client(12.0)};
  for (Scheduler* s : {static_cast<Scheduler*>(&rr),
                       static_cast<Scheduler*>(&pf),
                       static_cast<Scheduler*>(&ma)}) {
    for (int slot = 0; slot < 50; ++slot) {
      const std::size_t first = s->pick(clients);
      EXPECT_EQ(s->pick(clients), first) << s->name() << " slot " << slot;
      EXPECT_EQ(s->pick(clients), first) << s->name() << " slot " << slot;
      s->on_served(clients, first);
    }
  }
}

TEST(SchedulerStateTest, ProbingDoesNotSkewMobilityBoost) {
  // Regression: pick() used to advance the offered-rate EWMA, so an extra
  // probe pick made a mobile client's old low rate stick in rate_smooth_ and
  // a later moderate rate look like a huge peak (rate/rate_smooth >> 1),
  // stealing the slot from a better static client.
  MobilityAwareScheduler probed;
  const std::vector<ClientSlotInfo> early{
      client(40.0, MobilityMode::kStatic),
      client(10.0, MobilityMode::kMacroAway)};
  (void)probed.pick(early);  // a probe only — never committed with on_served
  const std::vector<ClientSlotInfo> now{
      client(40.0, MobilityMode::kStatic),
      client(35.0, MobilityMode::kMacroAway)};
  // Static client: metric 40/0.5 = 80. Mobile client with no committed slots
  // has no channel average, so its relative ratio is 1: metric 35/0.5 = 70.
  EXPECT_EQ(probed.pick(now), 0u);
  // And the probe left no trace: a fresh scheduler agrees.
  MobilityAwareScheduler fresh;
  EXPECT_EQ(fresh.pick(now), probed.pick(now));
}

TEST(MobilityAwareTest, FallsBackToPfWithoutClassification) {
  MobilityAwareScheduler ma;
  ProportionalFairScheduler pf;
  const std::vector<ClientSlotInfo> clients{client(10), client(50)};
  EXPECT_EQ(ma.pick(clients), pf.pick(clients));
}

}  // namespace
}  // namespace mobiwlan
