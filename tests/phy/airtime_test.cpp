// Tests for the 802.11n airtime model behind every throughput number.
#include "phy/airtime.hpp"

#include <gtest/gtest.h>

#include "util/units.hpp"

namespace mobiwlan {
namespace {

TEST(AirtimeTest, AmpduGrowsWithPayload) {
  const McsEntry& e = mcs(7);
  double prev = 0.0;
  for (int n = 1; n <= 32; n *= 2) {
    const double t = ampdu_airtime_s(e, n, 1500);
    EXPECT_GT(t, prev);
    prev = t;
  }
}

TEST(AirtimeTest, FasterMcsShorterFrame) {
  EXPECT_LT(ampdu_airtime_s(mcs(7), 8, 1500), ampdu_airtime_s(mcs(0), 8, 1500));
}

TEST(AirtimeTest, PreambleDominatesTinyFrame) {
  AirtimeConfig cfg;
  const double t = ampdu_airtime_s(mcs(15), 1, 100);
  EXPECT_GT(t, cfg.preamble_s);
  EXPECT_LT(t, cfg.preamble_s + 2 * cfg.ht_ltf_per_stream_s + 1e-4);
}

TEST(AirtimeTest, ExchangeAddsContentionAndAck) {
  const double frame = ampdu_airtime_s(mcs(4), 4, 1500);
  const double exchange = exchange_airtime_s(mcs(4), 4, 1500);
  AirtimeConfig cfg;
  EXPECT_NEAR(exchange - frame,
              kDifs + cfg.avg_backoff_slots * kSlotTime + kSifs + cfg.block_ack_s,
              1e-12);
}

TEST(AirtimeTest, SingleMpduUsesPlainAck) {
  AirtimeConfig cfg;
  const double single = exchange_airtime_s(mcs(4), 1, 1500);
  const double frame = ampdu_airtime_s(mcs(4), 1, 1500);
  EXPECT_NEAR(single - frame,
              kDifs + cfg.avg_backoff_slots * kSlotTime + kSifs + cfg.ack_s, 1e-12);
}

TEST(MpdusWithinTimeTest, AtLeastOne) {
  EXPECT_GE(mpdus_within_time(mcs(0), 1e-6, 1500), 1);
}

TEST(MpdusWithinTimeTest, CappedAt64) {
  EXPECT_EQ(mpdus_within_time(mcs(15), 1.0, 100), 64);
}

TEST(MpdusWithinTimeTest, ScalesWithRate) {
  // §5: aggregation size = max aggregation time / bit-rate.
  const int slow = mpdus_within_time(mcs(0), 4e-3, 1500);
  const int fast = mpdus_within_time(mcs(15), 4e-3, 1500);
  EXPECT_GT(fast, slow);
  // MCS15 is 20x the rate of MCS0.
  EXPECT_NEAR(static_cast<double>(fast) / slow, 20.0, 4.0);
}

TEST(MpdusWithinTimeTest, ScalesWithTimeLimit) {
  const int at2 = mpdus_within_time(mcs(3), 2e-3, 1500);
  const int at8 = mpdus_within_time(mcs(3), 8e-3, 1500);
  EXPECT_NEAR(static_cast<double>(at8) / at2, 4.0, 0.6);
}

TEST(GoodputTest, BelowPhyRate) {
  for (const auto& e : mcs_table()) {
    const int n = mpdus_within_time(e, 4e-3, 1500);
    const double g = exchange_goodput_mbps(e, n, 1500);
    EXPECT_GT(g, 0.0);
    EXPECT_LT(g, e.rate_mbps);
  }
}

TEST(GoodputTest, AggregationAmortizesOverhead) {
  // The central premise of §5: more MPDUs per frame -> higher efficiency.
  const McsEntry& e = mcs(12);
  double prev = 0.0;
  for (int n : {1, 2, 4, 8, 16, 32}) {
    const double g = exchange_goodput_mbps(e, n, 1500);
    EXPECT_GT(g, prev);
    prev = g;
  }
}

TEST(GoodputTest, EfficiencyGainSaturates) {
  // Going 32 -> 64 helps less than 1 -> 2 (diminishing returns).
  const McsEntry& e = mcs(12);
  const double gain_small =
      exchange_goodput_mbps(e, 2, 1500) / exchange_goodput_mbps(e, 1, 1500);
  const double gain_large =
      exchange_goodput_mbps(e, 64, 1500) / exchange_goodput_mbps(e, 32, 1500);
  EXPECT_GT(gain_small, gain_large);
}

class AggregationEfficiencySweep : public ::testing::TestWithParam<int> {};

TEST_P(AggregationEfficiencySweep, EfficiencyWithinBounds) {
  const int mcs_index = GetParam();
  const McsEntry& e = mcs(mcs_index);
  const int n = mpdus_within_time(e, 4e-3, 1500);
  const double efficiency = exchange_goodput_mbps(e, n, 1500) / e.rate_mbps;
  EXPECT_GT(efficiency, 0.5) << "mcs " << mcs_index;
  EXPECT_LT(efficiency, 1.0);
}

INSTANTIATE_TEST_SUITE_P(AllMcs, AggregationEfficiencySweep,
                         ::testing::Values(0, 3, 7, 9, 12, 15));

}  // namespace
}  // namespace mobiwlan
