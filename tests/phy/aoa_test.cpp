// Tests for beamscan AoA estimation (§9 augmentation).
#include "phy/aoa.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "chan/scenario.hpp"
#include "util/rng.hpp"

namespace mobiwlan {
namespace {

/// Synthesize a single-path CSI with a known departure angle using the same
/// ULA convention as the channel (element m phase: -pi * m * cos(theta)).
CsiMatrix single_path_csi(double theta, std::size_t n_tx = 3, std::size_t n_rx = 2,
                          std::size_t n_sc = 52) {
  CsiMatrix csi(n_tx, n_rx, n_sc);
  for (std::size_t tx = 0; tx < n_tx; ++tx) {
    const double phase = -std::numbers::pi * static_cast<double>(tx) * std::cos(theta);
    for (std::size_t rx = 0; rx < n_rx; ++rx)
      for (std::size_t sc = 0; sc < n_sc; ++sc)
        csi.at(tx, rx, sc) = std::polar(1.0, phase + 0.1 * static_cast<double>(sc));
  }
  return csi;
}

TEST(AoaTest, RecoversKnownAngles) {
  for (double theta : {0.3, 0.8, 1.2, 1.57, 2.0, 2.7}) {
    const AoaEstimate est = estimate_aoa(single_path_csi(theta));
    EXPECT_NEAR(est.angle_rad, theta, 0.06) << "theta " << theta;
  }
}

TEST(AoaTest, ConeAmbiguityFoldsIntoHalfPlane) {
  // -theta and +theta are indistinguishable on a ULA: both report the fold.
  const AoaEstimate pos = estimate_aoa(single_path_csi(0.9));
  const AoaEstimate neg = estimate_aoa(single_path_csi(-0.9));
  EXPECT_NEAR(pos.angle_rad, neg.angle_rad, 0.03);
}

TEST(AoaTest, PeakRatioHighForSinglePath) {
  const AoaEstimate est = estimate_aoa(single_path_csi(1.0));
  EXPECT_GT(est.peak_ratio, 1.5);
}

TEST(AoaTest, NoisyCsiStillNearTruth) {
  Rng rng(3);
  CsiMatrix csi = single_path_csi(1.1);
  for (auto& v : csi.raw()) v += rng.complex_gaussian(0.02);
  EXPECT_NEAR(estimate_aoa(csi).angle_rad, 1.1, 0.1);
}

TEST(AoaTest, EmptyCsiSafe) {
  const AoaEstimate est = estimate_aoa(CsiMatrix{});
  EXPECT_DOUBLE_EQ(est.angle_rad, 0.0);
  EXPECT_DOUBLE_EQ(est.peak_ratio, 0.0);
}

TEST(AoaTest, DegenerateGridSafe) {
  EXPECT_NO_THROW(estimate_aoa(single_path_csi(1.0), 1));
  EXPECT_DOUBLE_EQ(estimate_aoa(single_path_csi(1.0), 1).peak_ratio, 0.0);
}

TEST(AoaTest, AllZeroCsiReportsNanAngleAndZeroRatio) {
  // A flat zero spectrum has no argmax: the estimate must be rejectable
  // (NaN angle, zero confidence). The pre-fix code reported theta = 0 with
  // peak_ratio = 1.0 — indistinguishable from a weak genuine measurement,
  // which the fusion stage would then blend in.
  const AoaEstimate est = estimate_aoa(CsiMatrix(3, 2, 52));
  EXPECT_TRUE(std::isnan(est.angle_rad));
  EXPECT_DOUBLE_EQ(est.peak_ratio, 0.0);
}

TEST(AoaTest, TinyScaleCsiStillEstimates) {
  // Near-zero but nonzero power must take the normal path: the degenerate
  // branch is for exact zeros only, not a magnitude cliff.
  CsiMatrix csi = single_path_csi(1.2);
  for (auto& v : csi.raw()) v *= 1e-30;
  const AoaEstimate est = estimate_aoa(csi);
  EXPECT_NEAR(est.angle_rad, 1.2, 0.06);
  EXPECT_GT(est.peak_ratio, 1.5);
}

/// The pre-hoist estimator, kept verbatim as a reference: the conjugated
/// steering phasor is recomputed by std::polar inside the per-(subcarrier,
/// rx) accumulation. The production hoist is pure loop-invariant code
/// motion, so its output must be bitwise identical to this.
AoaEstimate reference_estimate_aoa(const CsiMatrix& csi, int grid_points = 181) {
  AoaEstimate best;
  if (csi.empty() || grid_points < 2) return best;
  double best_power = -1.0;
  double power_sum = 0.0;
  for (int g = 0; g < grid_points; ++g) {
    const double theta =
        std::numbers::pi * static_cast<double>(g) / (grid_points - 1);
    const double phase_step = -std::numbers::pi * std::cos(theta);
    double power = 0.0;
    for (std::size_t sc = 0; sc < csi.n_subcarriers(); ++sc) {
      for (std::size_t rx = 0; rx < csi.n_rx(); ++rx) {
        cplx acc{};
        for (std::size_t tx = 0; tx < csi.n_tx(); ++tx)
          acc += csi.at(tx, rx, sc) *
                 std::conj(std::polar(1.0, phase_step * static_cast<double>(tx)));
        power += std::norm(acc);
      }
    }
    power_sum += power;
    if (power > best_power) {
      best_power = power;
      best.angle_rad = theta;
    }
  }
  best.peak_ratio = best_power / (power_sum / grid_points);
  return best;
}

TEST(AoaTest, HoistedSteeringBitwiseMatchesReference) {
  // Fixed single-path CSI, then random CSI draws: angle and ratio must
  // match the un-hoisted reference to the last bit.
  for (double theta : {0.2, 1.0, 2.9}) {
    const CsiMatrix csi = single_path_csi(theta);
    const AoaEstimate fast = estimate_aoa(csi);
    const AoaEstimate ref = reference_estimate_aoa(csi);
    EXPECT_EQ(fast.angle_rad, ref.angle_rad) << "theta " << theta;
    EXPECT_EQ(fast.peak_ratio, ref.peak_ratio) << "theta " << theta;
  }
  Rng rng(11);
  for (int trial = 0; trial < 8; ++trial) {
    CsiMatrix csi(3, 2, 52);
    for (auto& v : csi.raw()) v = rng.complex_gaussian(1.0);
    const AoaEstimate fast = estimate_aoa(csi);
    const AoaEstimate ref = reference_estimate_aoa(csi);
    EXPECT_EQ(fast.angle_rad, ref.angle_rad) << "trial " << trial;
    EXPECT_EQ(fast.peak_ratio, ref.peak_ratio) << "trial " << trial;
  }
}

TEST(AoaTest, WideArrayFallbackBitwiseMatchesReference) {
  // Arrays wider than the hoist cap (16 tx) take the in-loop std::polar
  // fallback, which must agree with the reference just the same.
  Rng rng(13);
  CsiMatrix csi(17, 1, 8);
  for (auto& v : csi.raw()) v = rng.complex_gaussian(1.0);
  const AoaEstimate fast = estimate_aoa(csi);
  const AoaEstimate ref = reference_estimate_aoa(csi);
  EXPECT_EQ(fast.angle_rad, ref.angle_rad);
  EXPECT_EQ(fast.peak_ratio, ref.peak_ratio);
}

TEST(AoaTest, TracksLosDirectionOnSimulatedChannel) {
  // On the full multipath channel the LOS usually dominates the scan;
  // across several draws the estimate should track the geometric angle.
  Rng master(7);
  int close = 0;
  const int trials = 12;
  for (int trial = 0; trial < trials; ++trial) {
    Scenario s = make_scenario(MobilityClass::kStatic, master);
    const Vec2 pos = s.trajectory->position(0.0);
    const double truth = std::acos(std::cos(std::atan2(pos.y, pos.x)));
    const AoaEstimate est = estimate_aoa(s.channel->csi_at(0.0));
    if (std::abs(est.angle_rad - truth) < 0.2) ++close;
  }
  EXPECT_GE(close, trials * 2 / 3);
}

TEST(AoaTest, OrbitSweepsTheEstimate) {
  Rng master(9);
  Scenario s = make_circular_scenario(10.0, master);
  const double a0 = estimate_aoa(s.channel->csi_at(0.0)).angle_rad;
  const double a1 = estimate_aoa(s.channel->csi_at(8.0)).angle_rad;
  // ~0.12 rad/s of angular motion over 8 s.
  EXPECT_GT(std::abs(a1 - a0), 0.4);
}

}  // namespace
}  // namespace mobiwlan
