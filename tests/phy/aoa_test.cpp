// Tests for beamscan AoA estimation (§9 augmentation).
#include "phy/aoa.hpp"

#include <gtest/gtest.h>

#include <numbers>

#include "chan/scenario.hpp"
#include "util/rng.hpp"

namespace mobiwlan {
namespace {

/// Synthesize a single-path CSI with a known departure angle using the same
/// ULA convention as the channel (element m phase: -pi * m * cos(theta)).
CsiMatrix single_path_csi(double theta, std::size_t n_tx = 3, std::size_t n_rx = 2,
                          std::size_t n_sc = 52) {
  CsiMatrix csi(n_tx, n_rx, n_sc);
  for (std::size_t tx = 0; tx < n_tx; ++tx) {
    const double phase = -std::numbers::pi * static_cast<double>(tx) * std::cos(theta);
    for (std::size_t rx = 0; rx < n_rx; ++rx)
      for (std::size_t sc = 0; sc < n_sc; ++sc)
        csi.at(tx, rx, sc) = std::polar(1.0, phase + 0.1 * static_cast<double>(sc));
  }
  return csi;
}

TEST(AoaTest, RecoversKnownAngles) {
  for (double theta : {0.3, 0.8, 1.2, 1.57, 2.0, 2.7}) {
    const AoaEstimate est = estimate_aoa(single_path_csi(theta));
    EXPECT_NEAR(est.angle_rad, theta, 0.06) << "theta " << theta;
  }
}

TEST(AoaTest, ConeAmbiguityFoldsIntoHalfPlane) {
  // -theta and +theta are indistinguishable on a ULA: both report the fold.
  const AoaEstimate pos = estimate_aoa(single_path_csi(0.9));
  const AoaEstimate neg = estimate_aoa(single_path_csi(-0.9));
  EXPECT_NEAR(pos.angle_rad, neg.angle_rad, 0.03);
}

TEST(AoaTest, PeakRatioHighForSinglePath) {
  const AoaEstimate est = estimate_aoa(single_path_csi(1.0));
  EXPECT_GT(est.peak_ratio, 1.5);
}

TEST(AoaTest, NoisyCsiStillNearTruth) {
  Rng rng(3);
  CsiMatrix csi = single_path_csi(1.1);
  for (auto& v : csi.raw()) v += rng.complex_gaussian(0.02);
  EXPECT_NEAR(estimate_aoa(csi).angle_rad, 1.1, 0.1);
}

TEST(AoaTest, EmptyCsiSafe) {
  const AoaEstimate est = estimate_aoa(CsiMatrix{});
  EXPECT_DOUBLE_EQ(est.angle_rad, 0.0);
}

TEST(AoaTest, DegenerateGridSafe) {
  EXPECT_NO_THROW(estimate_aoa(single_path_csi(1.0), 1));
}

TEST(AoaTest, TracksLosDirectionOnSimulatedChannel) {
  // On the full multipath channel the LOS usually dominates the scan;
  // across several draws the estimate should track the geometric angle.
  Rng master(7);
  int close = 0;
  const int trials = 12;
  for (int trial = 0; trial < trials; ++trial) {
    Scenario s = make_scenario(MobilityClass::kStatic, master);
    const Vec2 pos = s.trajectory->position(0.0);
    const double truth = std::acos(std::cos(std::atan2(pos.y, pos.x)));
    const AoaEstimate est = estimate_aoa(s.channel->csi_at(0.0));
    if (std::abs(est.angle_rad - truth) < 0.2) ++close;
  }
  EXPECT_GE(close, trials * 2 / 3);
}

TEST(AoaTest, OrbitSweepsTheEstimate) {
  Rng master(9);
  Scenario s = make_circular_scenario(10.0, master);
  const double a0 = estimate_aoa(s.channel->csi_at(0.0)).angle_rad;
  const double a1 = estimate_aoa(s.channel->csi_at(8.0)).angle_rad;
  // ~0.12 rad/s of angular motion over 8 s.
  EXPECT_GT(std::abs(a1 - a0), 0.4);
}

}  // namespace
}  // namespace mobiwlan
