// Tests for SU-MRT beamforming and MU-MIMO zero-forcing under stale CSI.
#include "phy/beamforming.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace mobiwlan {
namespace {

CsiMatrix random_csi(std::size_t tx, std::size_t rx, std::size_t sc, Rng& rng) {
  CsiMatrix m(tx, rx, sc);
  for (auto& v : m.raw()) v = rng.complex_gaussian();
  return m;
}

TEST(SuBeamformingTest, FreshCsiGivesFullArrayGain) {
  Rng rng(1);
  for (std::size_t n_tx : {2u, 3u, 4u}) {
    const CsiMatrix h = random_csi(n_tx, 1, 52, rng);
    EXPECT_NEAR(su_beamforming_gain_db(h, h), 10.0 * std::log10(n_tx), 1e-9)
        << n_tx << " antennas";
  }
}

TEST(SuBeamformingTest, StaleCsiGainNearZero) {
  Rng rng(2);
  double sum = 0.0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    const CsiMatrix now = random_csi(3, 2, 52, rng);
    const CsiMatrix stale = random_csi(3, 2, 52, rng);
    sum += su_beamforming_gain_db(now, stale);
  }
  // A random beam has expected unit gain -> 0 dB on average.
  EXPECT_NEAR(sum / trials, 0.0, 1.0);
}

TEST(SuBeamformingTest, FreshBeatsStale) {
  Rng rng(3);
  const CsiMatrix now = random_csi(3, 1, 52, rng);
  const CsiMatrix stale = random_csi(3, 1, 52, rng);
  EXPECT_GT(su_beamforming_gain_db(now, now), su_beamforming_gain_db(now, stale));
}

TEST(SuBeamformingTest, PartiallyStaleInBetween) {
  Rng rng(4);
  const CsiMatrix now = random_csi(3, 1, 52, rng);
  CsiMatrix partial = now;
  const CsiMatrix noise = random_csi(3, 1, 52, rng);
  for (std::size_t i = 0; i < partial.raw().size(); ++i)
    partial.raw()[i] = 0.8 * partial.raw()[i] + 0.6 * noise.raw()[i];
  const double g_partial = su_beamforming_gain_db(now, partial);
  EXPECT_LT(g_partial, su_beamforming_gain_db(now, now));
  EXPECT_GT(g_partial, 0.5);
}

TEST(SuBeamformingTest, DimensionMismatchThrows) {
  Rng rng(5);
  const CsiMatrix a = random_csi(3, 1, 52, rng);
  const CsiMatrix b = random_csi(2, 1, 52, rng);
  EXPECT_THROW(su_beamforming_gain_db(a, b), std::invalid_argument);
}

TEST(MuMimoTest, FreshCsiNearInterferenceFree) {
  // With perfect CSI, ZF nulls cross-talk: each client's SINR approaches its
  // own beamformed SNR; in particular it must be far above 0 dB at snr0=20.
  Rng rng(6);
  std::vector<CsiMatrix> h;
  for (int k = 0; k < 3; ++k) h.push_back(random_csi(3, 1, 52, rng));
  const auto result = mu_mimo_zero_forcing(h, h, {20.0, 20.0, 20.0});
  ASSERT_EQ(result.sinr_db.size(), 3u);
  for (double sinr : result.sinr_db) EXPECT_GT(sinr, 8.0);
}

TEST(MuMimoTest, StaleCsiCreatesInterference) {
  Rng rng(7);
  std::vector<CsiMatrix> now;
  std::vector<CsiMatrix> stale;
  for (int k = 0; k < 3; ++k) {
    now.push_back(random_csi(3, 1, 52, rng));
    stale.push_back(random_csi(3, 1, 52, rng));
  }
  const auto fresh = mu_mimo_zero_forcing(now, now, {20.0, 20.0, 20.0});
  const auto aged = mu_mimo_zero_forcing(now, stale, {20.0, 20.0, 20.0});
  for (int k = 0; k < 3; ++k) EXPECT_GT(fresh.sinr_db[k], aged.sinr_db[k]);
  // Fully stale ZF to 3 clients leaves SIR around 1/(K-1), i.e. low SINR.
  for (int k = 0; k < 3; ++k) EXPECT_LT(aged.sinr_db[k], 6.0);
}

TEST(MuMimoTest, OnlyMobileClientSuffers) {
  // §6.2: "mobility only affects the performance of the mobile client and
  // does not impact the static clients noticeably."
  Rng rng(8);
  std::vector<CsiMatrix> now;
  for (int k = 0; k < 3; ++k) now.push_back(random_csi(3, 1, 52, rng));
  std::vector<CsiMatrix> stale = now;           // clients 0,1 static
  stale[2] = random_csi(3, 1, 52, rng);         // client 2 moved
  const auto r = mu_mimo_zero_forcing(now, stale, {20.0, 20.0, 20.0});
  EXPECT_GT(r.sinr_db[0], r.sinr_db[2]);
  EXPECT_GT(r.sinr_db[1], r.sinr_db[2]);
  // Static clients keep most of their fresh-CSI SINR. Their residual
  // interference comes only from the mobile client's mis-steered beam.
  const auto fresh = mu_mimo_zero_forcing(now, now, {20.0, 20.0, 20.0});
  EXPECT_GT(r.sinr_db[0], fresh.sinr_db[0] - 12.0);
}

TEST(MuMimoTest, HigherSnrHigherSinr) {
  Rng rng(9);
  std::vector<CsiMatrix> h;
  for (int k = 0; k < 2; ++k) h.push_back(random_csi(3, 1, 52, rng));
  const auto lo = mu_mimo_zero_forcing(h, h, {10.0, 10.0});
  const auto hi = mu_mimo_zero_forcing(h, h, {25.0, 25.0});
  for (int k = 0; k < 2; ++k) EXPECT_GT(hi.sinr_db[k], lo.sinr_db[k]);
}

TEST(MuMimoTest, CountMismatchThrows) {
  Rng rng(10);
  std::vector<CsiMatrix> h{random_csi(3, 1, 8, rng)};
  EXPECT_THROW(mu_mimo_zero_forcing(h, {}, {10.0}), std::invalid_argument);
  EXPECT_THROW(mu_mimo_zero_forcing(h, h, {}), std::invalid_argument);
}

TEST(MuMimoTest, MoreClientsThanAntennasThrows) {
  Rng rng(11);
  std::vector<CsiMatrix> h;
  for (int k = 0; k < 4; ++k) h.push_back(random_csi(3, 1, 8, rng));
  std::vector<double> snr(4, 20.0);
  EXPECT_THROW(mu_mimo_zero_forcing(h, h, snr), std::invalid_argument);
}

TEST(MuMimoTest, EmptyClientsOk) {
  EXPECT_TRUE(mu_mimo_zero_forcing({}, {}, {}).sinr_db.empty());
}

class MuMimoClientCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(MuMimoClientCountSweep, FreshZfScalesToClientCount) {
  const int k = GetParam();
  Rng rng(20 + k);
  std::vector<CsiMatrix> h;
  for (int i = 0; i < k; ++i) h.push_back(random_csi(3, 1, 52, rng));
  const std::vector<double> snr(k, 20.0);
  const auto r = mu_mimo_zero_forcing(h, h, snr);
  ASSERT_EQ(r.sinr_db.size(), static_cast<std::size_t>(k));
  for (double s : r.sinr_db) EXPECT_GT(s, 5.0);
}

INSTANTIATE_TEST_SUITE_P(Counts, MuMimoClientCountSweep, ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace mobiwlan
