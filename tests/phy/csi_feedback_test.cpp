// Tests for the CSI feedback overhead model (§6).
#include "phy/csi_feedback.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

TEST(FeedbackSizeTest, DefaultReportSize) {
  CsiFeedbackConfig cfg;
  // 3 tx * 1 rx * 52 sc * 2 components * 8 bits = 2496 bits = 312 bytes + hdr.
  EXPECT_EQ(feedback_report_bytes(cfg), 312u + 40u);
}

TEST(FeedbackSizeTest, ScalesWithAntennasAndBits) {
  CsiFeedbackConfig base;
  CsiFeedbackConfig wide = base;
  wide.n_rx = 2;
  EXPECT_GT(feedback_report_bytes(wide), feedback_report_bytes(base));
  CsiFeedbackConfig coarse = base;
  coarse.bits_per_component = 4;
  EXPECT_LT(feedback_report_bytes(coarse), feedback_report_bytes(base));
}

TEST(FeedbackAirtimeTest, IncludesSoundingOverhead) {
  CsiFeedbackConfig cfg;
  EXPECT_GT(feedback_exchange_airtime_s(cfg), cfg.sounding_overhead_s);
}

TEST(FeedbackAirtimeTest, SlowerRateLongerAirtime) {
  CsiFeedbackConfig slow;
  slow.feedback_rate_mbps = 6.5;
  CsiFeedbackConfig fast;
  fast.feedback_rate_mbps = 24.0;
  EXPECT_GT(feedback_exchange_airtime_s(slow), feedback_exchange_airtime_s(fast));
}

TEST(OverheadTest, MonotoneDecreasingInPeriod) {
  double prev = 1.1;
  for (double p : {1e-3, 2e-3, 5e-3, 10e-3, 20e-3, 50e-3, 200e-3}) {
    const double f = feedback_overhead_fraction(p);
    EXPECT_LE(f, prev);
    EXPECT_GE(f, 0.0);
    EXPECT_LE(f, 1.0);
    prev = f;
  }
}

TEST(OverheadTest, SaturatesAtOne) {
  EXPECT_DOUBLE_EQ(feedback_overhead_fraction(1e-9), 1.0);
  EXPECT_DOUBLE_EQ(feedback_overhead_fraction(0.0), 1.0);
  EXPECT_DOUBLE_EQ(feedback_overhead_fraction(-1.0), 1.0);
}

TEST(OverheadTest, LongPeriodNegligible) {
  EXPECT_LT(feedback_overhead_fraction(0.2), 0.01);
}

TEST(OverheadTest, InverseProportional) {
  const double at10 = feedback_overhead_fraction(10e-3);
  const double at20 = feedback_overhead_fraction(20e-3);
  EXPECT_NEAR(at10 / at20, 2.0, 1e-9);
}

}  // namespace
}  // namespace mobiwlan
