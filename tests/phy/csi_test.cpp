// Tests for the CsiMatrix container and complex correlation.
#include "phy/csi.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobiwlan {
namespace {

CsiMatrix random_csi(std::size_t tx, std::size_t rx, std::size_t sc, Rng& rng) {
  CsiMatrix m(tx, rx, sc);
  for (auto& v : m.raw()) v = rng.complex_gaussian();
  return m;
}

TEST(CsiMatrixTest, DefaultIsEmpty) {
  CsiMatrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.n_tx(), 0u);
}

TEST(CsiMatrixTest, DimensionsAndIndexing) {
  CsiMatrix m(3, 2, 52);
  EXPECT_EQ(m.n_tx(), 3u);
  EXPECT_EQ(m.n_rx(), 2u);
  EXPECT_EQ(m.n_subcarriers(), 52u);
  EXPECT_EQ(m.raw().size(), 3u * 2u * 52u);
  m.at(2, 1, 51) = cplx(1.0, -1.0);
  EXPECT_EQ(m.at(2, 1, 51), cplx(1.0, -1.0));
  // Distinct cells do not alias.
  m.at(0, 0, 0) = cplx(9.0, 0.0);
  EXPECT_EQ(m.at(2, 1, 51), cplx(1.0, -1.0));
}

TEST(CsiMatrixTest, MagnitudesMatchAbs) {
  CsiMatrix m(1, 1, 3);
  m.at(0, 0, 0) = cplx(3.0, 4.0);
  m.at(0, 0, 1) = cplx(0.0, 2.0);
  m.at(0, 0, 2) = cplx(-1.0, 0.0);
  const auto mags = m.magnitudes(0, 0);
  EXPECT_DOUBLE_EQ(mags[0], 5.0);
  EXPECT_DOUBLE_EQ(mags[1], 2.0);
  EXPECT_DOUBLE_EQ(mags[2], 1.0);
}

TEST(CsiMatrixTest, MeanPower) {
  CsiMatrix m(1, 1, 2);
  m.at(0, 0, 0) = cplx(1.0, 0.0);
  m.at(0, 0, 1) = cplx(0.0, 3.0);
  EXPECT_DOUBLE_EQ(m.mean_power(), 5.0);
}

TEST(CsiMatrixTest, SubcarrierMatrixConvention) {
  // subcarrier_matrix returns H with rows = rx antennas: H(rx, tx).
  CsiMatrix m(2, 1, 1);
  m.at(0, 0, 0) = cplx(1.0, 0.0);
  m.at(1, 0, 0) = cplx(2.0, 0.0);
  const CMatrix h = m.subcarrier_matrix(0);
  EXPECT_EQ(h.rows(), 1u);
  EXPECT_EQ(h.cols(), 2u);
  EXPECT_EQ(h(0, 1), cplx(2.0, 0.0));
}

TEST(CsiMatrixTest, SubcarrierGainsFlattenTxMajor) {
  CsiMatrix m(2, 2, 1);
  m.at(1, 0, 0) = cplx(7.0, 0.0);
  const auto gains = m.subcarrier_gains(0);
  ASSERT_EQ(gains.size(), 4u);
  EXPECT_EQ(gains[2], cplx(7.0, 0.0));  // tx=1, rx=0
}

TEST(ComplexCorrelationTest, IdenticalIsOne) {
  Rng rng(1);
  const CsiMatrix a = random_csi(2, 2, 16, rng);
  EXPECT_NEAR(complex_correlation(a, a), 1.0, 1e-12);
}

TEST(ComplexCorrelationTest, ScalarRotationInvariant) {
  Rng rng(2);
  const CsiMatrix a = random_csi(2, 2, 16, rng);
  CsiMatrix b = a;
  for (auto& v : b.raw()) v *= std::polar(2.5, 1.234);
  EXPECT_NEAR(complex_correlation(a, b), 1.0, 1e-12);
}

TEST(ComplexCorrelationTest, IndependentNearZero) {
  Rng rng(3);
  double sum = 0.0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    const CsiMatrix a = random_csi(3, 2, 52, rng);
    const CsiMatrix b = random_csi(3, 2, 52, rng);
    sum += complex_correlation(a, b);
  }
  EXPECT_LT(sum / trials, 0.2);
}

TEST(ComplexCorrelationTest, MismatchedSizesReturnZero) {
  Rng rng(4);
  const CsiMatrix a = random_csi(1, 1, 8, rng);
  const CsiMatrix b = random_csi(1, 1, 16, rng);
  EXPECT_DOUBLE_EQ(complex_correlation(a, b), 0.0);
}

TEST(ComplexCorrelationTest, ZeroMatrixReturnsZero) {
  CsiMatrix a(1, 1, 4);
  CsiMatrix b(1, 1, 4);
  b.at(0, 0, 0) = 1.0;
  EXPECT_DOUBLE_EQ(complex_correlation(a, b), 0.0);
}

}  // namespace
}  // namespace mobiwlan
