// Tests for the SNR -> BER -> PER error model and the rate oracle.
#include "phy/error_model.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace mobiwlan {
namespace {

TEST(BerTest, RawBerDecreasesWithSnr) {
  for (auto mod : {Modulation::kBpsk, Modulation::kQpsk, Modulation::kQam16,
                   Modulation::kQam64}) {
    double prev = 1.0;
    for (double snr = -5.0; snr <= 35.0; snr += 2.0) {
      const double b = raw_ber(mod, snr);
      EXPECT_LE(b, prev + 1e-15);
      EXPECT_GE(b, 0.0);
      EXPECT_LE(b, 0.5);
      prev = b;
    }
  }
}

TEST(BerTest, DenserConstellationsWorseAtEqualSnr) {
  for (double snr = 5.0; snr <= 25.0; snr += 5.0) {
    EXPECT_LE(raw_ber(Modulation::kBpsk, snr), raw_ber(Modulation::kQpsk, snr) + 1e-15);
    EXPECT_LT(raw_ber(Modulation::kQpsk, snr), raw_ber(Modulation::kQam16, snr));
    EXPECT_LT(raw_ber(Modulation::kQam16, snr), raw_ber(Modulation::kQam64, snr));
  }
}

TEST(BerTest, CodedBetterThanUncoded) {
  for (double snr = 2.0; snr <= 25.0; snr += 3.0) {
    EXPECT_LE(coded_ber(Modulation::kQpsk, 0.5, snr), raw_ber(Modulation::kQpsk, snr));
  }
}

TEST(BerTest, StrongerCodeBetter) {
  for (double snr = 5.0; snr <= 20.0; snr += 5.0) {
    EXPECT_LE(coded_ber(Modulation::kQam16, 0.5, snr),
              coded_ber(Modulation::kQam16, 0.75, snr) + 1e-15);
  }
}

TEST(PerTest, BoundsAndMonotonicityInSnr) {
  const McsEntry& e = mcs(4);
  double prev = 1.0;
  for (double snr = 0.0; snr <= 40.0; snr += 1.0) {
    const double per = per_from_snr(e, snr, 1500);
    EXPECT_GE(per, 0.0);
    EXPECT_LE(per, 1.0);
    EXPECT_LE(per, prev + 1e-12);
    prev = per;
  }
}

TEST(PerTest, HighSnrNearZeroLowSnrNearOne) {
  const McsEntry& e = mcs(7);
  EXPECT_LT(per_from_snr(e, 40.0, 1500), 1e-4);
  EXPECT_GT(per_from_snr(e, 5.0, 1500), 0.99);
}

TEST(PerTest, LongerPacketsWorse) {
  const McsEntry& e = mcs(3);
  for (double snr = 10.0; snr <= 20.0; snr += 2.0) {
    EXPECT_GE(per_from_snr(e, snr, 1500), per_from_snr(e, snr, 200) - 1e-12);
  }
}

TEST(PerTest, HigherMcsWorseAtEqualSnr) {
  // Within single-stream MCS, PER is monotone in rate — the assumption the
  // Atheros RA's cross-rate update relies on (§4.1).
  for (double snr = 8.0; snr <= 30.0; snr += 2.0) {
    for (int i = 1; i <= 7; ++i) {
      EXPECT_GE(per_from_snr(mcs(i), snr, 1500),
                per_from_snr(mcs(i - 1), snr, 1500) - 1e-9)
          << "snr " << snr << " mcs " << i;
    }
  }
}

TEST(PerStreamSnrTest, DualStreamPenalized) {
  const double single = per_stream_snr_db(mcs(4), 25.0);
  const double dual = per_stream_snr_db(mcs(12), 25.0);
  EXPECT_GT(single, dual);
  // 3 dB power split + 3 dB separation penalty by default.
  EXPECT_NEAR(single - dual, 6.0, 0.1);
}

TEST(EffectiveSnrTest, FlatChannelEqualsWideband) {
  CsiMatrix flat(1, 1, 52);
  for (auto& v : flat.raw()) v = cplx(1.0, 0.0);
  EXPECT_NEAR(effective_snr_db(flat, 20.0), 20.0, 1e-9);
}

TEST(EffectiveSnrTest, SelectiveChannelAtOrBelowWideband) {
  Rng rng(9);
  for (int trial = 0; trial < 20; ++trial) {
    CsiMatrix h(2, 2, 52);
    for (auto& v : h.raw()) v = rng.complex_gaussian();
    for (double snr = 5.0; snr <= 30.0; snr += 5.0) {
      EXPECT_LE(effective_snr_db(h, snr), snr + 1e-9);
    }
  }
}

TEST(EffectiveSnrTest, EmptyCsiPassesThrough) {
  EXPECT_DOUBLE_EQ(effective_snr_db(CsiMatrix{}, 17.0), 17.0);
}

TEST(AgingTest, FreshMatchesPlainPer) {
  const McsEntry& e = mcs(5);
  EXPECT_NEAR(per_with_aging(e, 20.0, 1500, 0.0), per_from_snr(e, 20.0, 1500), 1e-9);
}

TEST(AgingTest, MonotoneInDecorrelation) {
  const McsEntry& e = mcs(5);
  double prev = 0.0;
  for (double d = 0.0; d <= 1.0; d += 0.05) {
    const double per = per_with_aging(e, 25.0, 1500, d);
    EXPECT_GE(per, prev - 1e-12);
    prev = per;
  }
}

TEST(AgingTest, ErrorFloorDefeatsHighSnr) {
  // With 30% decorrelation the self-interference floor caps SINR near 3.7 dB:
  // 64-QAM fails regardless of how strong the signal is.
  const McsEntry& e = mcs(7);
  EXPECT_GT(per_with_aging(e, 60.0, 1500, 0.3), 0.99);
}

TEST(AgingTest, LowRateSurvivesModerateAging) {
  const McsEntry& e = mcs(0);
  EXPECT_LT(per_with_aging(e, 30.0, 1500, 0.05), 0.05);
}

TEST(BestMcsTest, MonotoneNondecreasingInSnr) {
  int prev = 0;
  for (double snr = 0.0; snr <= 40.0; snr += 0.5) {
    const int best = best_mcs(snr, 1500, 2);
    EXPECT_GE(mcs(best).rate_mbps, mcs(prev).rate_mbps - 1e-9) << "snr " << snr;
    prev = best;
  }
}

TEST(BestMcsTest, HighSnrPicksTop) { EXPECT_EQ(best_mcs(40.0, 1500, 2), 15); }

TEST(BestMcsTest, LowSnrPicksBottom) { EXPECT_EQ(best_mcs(2.0, 1500, 2), 0); }

TEST(BestMcsTest, RespectsStreamBudget) {
  EXPECT_LE(best_mcs(40.0, 1500, 1), 7);
}

TEST(ExpectedThroughputTest, NeverExceedsPhyRate) {
  for (const auto& e : mcs_table()) {
    for (double snr = 0.0; snr <= 40.0; snr += 5.0) {
      const double tput = expected_throughput_mbps(e, snr, 1500);
      EXPECT_GE(tput, 0.0);
      EXPECT_LE(tput, e.rate_mbps + 1e-9);
    }
  }
}

class OracleRegionSweep : public ::testing::TestWithParam<double> {};

TEST_P(OracleRegionSweep, OracleBeatsNeighbours) {
  // The chosen MCS yields at least the throughput of adjacent MCS indices.
  const double snr = GetParam();
  const int best = best_mcs(snr, 1500, 2);
  const double best_tput = expected_throughput_mbps(mcs(best), snr, 1500);
  for (int delta : {-1, 1}) {
    const int other = best + delta;
    if (other < 0 || other > 15) continue;
    EXPECT_GE(best_tput, expected_throughput_mbps(mcs(other), snr, 1500) - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(SnrPoints, OracleRegionSweep,
                         ::testing::Values(5.0, 10.0, 15.0, 20.0, 25.0, 30.0));

}  // namespace
}  // namespace mobiwlan
