// Tests for the 802.11n MCS table and the Atheros rate ladder.
#include "phy/mcs.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

TEST(McsTableTest, SixteenEntries) { EXPECT_EQ(mcs_count(), 16u); }

TEST(McsTableTest, IndicesMatchPositions) {
  for (int i = 0; i < 16; ++i) EXPECT_EQ(mcs(i).index, i);
}

TEST(McsTableTest, OutOfRangeThrows) {
  EXPECT_THROW(mcs(-1), std::out_of_range);
  EXPECT_THROW(mcs(16), std::out_of_range);
}

TEST(McsTableTest, StreamCounts) {
  for (int i = 0; i <= 7; ++i) EXPECT_EQ(mcs(i).streams, 1) << i;
  for (int i = 8; i <= 15; ++i) EXPECT_EQ(mcs(i).streams, 2) << i;
}

TEST(McsTableTest, KnownRates) {
  EXPECT_DOUBLE_EQ(mcs(0).rate_mbps, 13.5);
  EXPECT_DOUBLE_EQ(mcs(7).rate_mbps, 135.0);
  EXPECT_DOUBLE_EQ(mcs(15).rate_mbps, 270.0);
}

TEST(McsTableTest, DualStreamDoublesRate) {
  // MCS 8+i has exactly twice the rate of MCS i.
  for (int i = 0; i <= 7; ++i)
    EXPECT_DOUBLE_EQ(mcs(8 + i).rate_mbps, 2.0 * mcs(i).rate_mbps) << i;
}

TEST(McsTableTest, RateMatchesModulationAndCoding) {
  // rate = subcarriers(108) * bits * code_rate / symbol_time(4us), 40 MHz LGI.
  for (const auto& e : mcs_table()) {
    const double expected = 108.0 * bits_per_symbol(e.modulation) * e.code_rate *
                            e.streams / 4.0;
    EXPECT_NEAR(e.rate_mbps, expected, 1e-9) << "MCS " << e.index;
  }
}

TEST(McsTableTest, RatesMonotoneWithinStreamGroup) {
  for (int i = 1; i <= 7; ++i)
    EXPECT_GT(mcs(i).rate_mbps, mcs(i - 1).rate_mbps);
  for (int i = 9; i <= 15; ++i)
    EXPECT_GT(mcs(i).rate_mbps, mcs(i - 1).rate_mbps);
}

TEST(McsTableTest, MaxForStreams) {
  EXPECT_EQ(max_mcs_for_streams(1), 7);
  EXPECT_EQ(max_mcs_for_streams(2), 15);
}

TEST(RateLadderTest, SingleStreamKeepsAllEight) {
  const auto& ladder = atheros_rate_ladder(1);
  EXPECT_EQ(ladder.size(), 8u);
  EXPECT_EQ(ladder.front(), 0);
  EXPECT_EQ(ladder.back(), 7);
}

TEST(RateLadderTest, DualStreamSkipsOverlaps) {
  // §4.1: skip single-stream MCS 5-7 and the duplicate-rate MCS 8 (plus the
  // other duplicate-rate dual-stream entries 9 and 10).
  const auto& ladder = atheros_rate_ladder(2);
  for (int skipped : {5, 6, 7, 8, 9, 10})
    EXPECT_EQ(std::count(ladder.begin(), ladder.end(), skipped), 0) << skipped;
}

TEST(RateLadderTest, DualStreamRatesStrictlyIncreasing) {
  const auto& ladder = atheros_rate_ladder(2);
  for (std::size_t i = 1; i < ladder.size(); ++i)
    EXPECT_GT(mcs(ladder[i]).rate_mbps, mcs(ladder[i - 1]).rate_mbps)
        << "position " << i;
}

TEST(ModulationTest, BitsPerSymbol) {
  EXPECT_EQ(bits_per_symbol(Modulation::kBpsk), 1);
  EXPECT_EQ(bits_per_symbol(Modulation::kQpsk), 2);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam16), 4);
  EXPECT_EQ(bits_per_symbol(Modulation::kQam64), 6);
}

TEST(ModulationTest, Names) {
  EXPECT_EQ(to_string(Modulation::kQam64), "64-QAM");
}

}  // namespace
}  // namespace mobiwlan
