// Tests for per-stream ZF SINRs and the stream-penalty validation.
#include "phy/mimo.hpp"

#include <gtest/gtest.h>

#include "chan/scenario.hpp"
#include "phy/error_model.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace mobiwlan {
namespace {

CMatrix orthonormal_2x2() {
  // Unitary channel: streams separate perfectly.
  const double s = 1.0 / std::sqrt(2.0);
  return CMatrix{{cplx(s, 0.0), cplx(s, 0.0)}, {cplx(s, 0.0), cplx(-s, 0.0)}};
}

TEST(MimoTest, SingleStreamMatchesReference) {
  // One stream through a unit-gain channel: SINR equals the reference SNR.
  CMatrix h{{cplx(1.0, 0.0)}};
  const auto sinrs = zf_stream_sinrs_db(h, 1, 20.0);
  ASSERT_EQ(sinrs.size(), 1u);
  EXPECT_NEAR(sinrs[0], 20.0, 1e-9);
}

TEST(MimoTest, OrthogonalChannelBreaksEven) {
  // Orthogonal 2x2: each stream pays the -3 dB power split but collects the
  // +3 dB two-antenna receive combining gain — net zero vs the
  // single-antenna reference.
  const auto sinrs = zf_stream_sinrs_db(orthonormal_2x2(), 2, 20.0);
  ASSERT_EQ(sinrs.size(), 2u);
  for (double s : sinrs) EXPECT_NEAR(s, 20.0, 0.05);
}

TEST(MimoTest, IllConditionedChannelPaysMore) {
  // Nearly-parallel columns: ZF noise enhancement crushes the streams.
  CMatrix h{{cplx(1.0, 0.0), cplx(0.99, 0.0)},
            {cplx(1.0, 0.0), cplx(1.01, 0.0)}};
  const auto sinrs = zf_stream_sinrs_db(h, 2, 20.0);
  for (double s : sinrs) EXPECT_LT(s, 5.0);
}

TEST(MimoTest, RankDeficientReportsFloor) {
  CMatrix h{{cplx(1.0, 0.0), cplx(1.0, 0.0)}, {cplx(1.0, 0.0), cplx(1.0, 0.0)}};
  const auto sinrs = zf_stream_sinrs_db(h, 2, 20.0);
  for (double s : sinrs) EXPECT_LT(s, -100.0);
}

TEST(MimoTest, InvalidStreamCountThrows) {
  CMatrix h(2, 3);
  EXPECT_THROW(zf_stream_sinrs_db(h, 3, 20.0), std::invalid_argument);
  EXPECT_THROW(zf_stream_sinrs_db(h, 0, 20.0), std::invalid_argument);
}

TEST(MimoTest, EffectiveSinrsTrackSnr) {
  Rng rng(1);
  Scenario s = make_scenario(MobilityClass::kStatic, rng);
  const CsiMatrix csi = s.channel->csi_true(0.0);
  const auto lo = zf_effective_stream_sinrs_db(csi, 2, 15.0);
  const auto hi = zf_effective_stream_sinrs_db(csi, 2, 25.0);
  for (int k = 0; k < 2; ++k) EXPECT_GT(hi[k], lo[k] + 8.0);
}

TEST(MimoTest, StreamPenaltyPositiveOnRealChannels) {
  Rng rng(2);
  for (int trial = 0; trial < 8; ++trial) {
    Scenario s = make_scenario(MobilityClass::kStatic, rng);
    const double penalty =
        stream_separation_penalty_db(s.channel->csi_true(0.0), 2, 20.0);
    EXPECT_GT(penalty, 0.0) << "trial " << trial;
  }
}

TEST(MimoTest, ErrorModelPenaltyIsReasonableApproximation) {
  // The error model charges a fixed `stream_penalty_db` (3 dB) over the
  // power split; the true ZF penalty across random office channels should
  // bracket it (median within a few dB).
  Rng rng(3);
  SampleSet penalties;
  for (int trial = 0; trial < 24; ++trial) {
    Scenario s = make_scenario(MobilityClass::kStatic, rng);
    penalties.add(stream_separation_penalty_db(s.channel->csi_true(0.0), 2, 20.0));
  }
  const ErrorModelConfig cfg;
  EXPECT_GT(penalties.median(), cfg.stream_penalty_db - 3.0);
  EXPECT_LT(penalties.median(), cfg.stream_penalty_db + 6.0);
}

}  // namespace
}  // namespace mobiwlan
