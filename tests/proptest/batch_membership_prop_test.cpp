// batch_membership_prop_test — incremental membership vs. from-scratch
// rebuild on ChannelBatch.
//
// The campus hot loop maintains one long-lived ChannelBatch per shard and
// mutates its membership incrementally: departures punch holes
// (remove_link), arrivals and handovers fill them (add_link, LIFO). The
// whole design rests on one property: a batch whose membership was reached
// through ANY interleaving of add/remove/sample operations produces
// bitwise-identical samples to a batch freshly built over the same live
// links — holes, slot recycling and slot order must be pure bookkeeping
// with zero numerical footprint.
//
// Each case drives a random operation sequence against mirrored channel
// sets (identical construction, so their RNG streams stay in lockstep):
// the incremental batch samples through sample_slot — the fused per-slot
// entry point the campus uses — while the reference is rebuilt from
// scratch before every observation and sampled through sample_range. Every
// sample field (CSI element bits, RSSI, SNR, ToF, distance) must agree
// exactly.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <vector>

#include "../chan/channel_golden_cases.hpp"
#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "proptest.hpp"
#include "util/rng.hpp"

namespace mobiwlan {
namespace {

using goldencase::kNumCases;

void expect_samples_identical(const ChannelSample& inc,
                              const ChannelSample& ref, std::size_t link) {
  EXPECT_EQ(inc.rssi_dbm, ref.rssi_dbm) << "link " << link;
  EXPECT_EQ(inc.snr_db, ref.snr_db) << "link " << link;
  EXPECT_EQ(inc.tof_cycles, ref.tof_cycles) << "link " << link;
  EXPECT_EQ(inc.true_distance_m, ref.true_distance_m) << "link " << link;
  ASSERT_EQ(inc.csi.n_tx(), ref.csi.n_tx());
  ASSERT_EQ(inc.csi.n_rx(), ref.csi.n_rx());
  ASSERT_EQ(inc.csi.n_subcarriers(), ref.csi.n_subcarriers());
  for (std::size_t tx = 0; tx < inc.csi.n_tx(); ++tx)
    for (std::size_t rx = 0; rx < inc.csi.n_rx(); ++rx)
      for (std::size_t sc = 0; sc < inc.csi.n_subcarriers(); ++sc) {
        const cplx a = inc.csi.at(tx, rx, sc);
        const cplx b = ref.csi.at(tx, rx, sc);
        ASSERT_EQ(a.real(), b.real())
            << "link " << link << " csi[" << tx << "," << rx << "," << sc
            << "].re";
        ASSERT_EQ(a.imag(), b.imag())
            << "link " << link << " csi[" << tx << "," << rx << "," << sc
            << "].im";
      }
}

TEST(BatchMembershipProp, IncrementalEqualsRebuiltFromScratch) {
  proptest::run_cases(
      "batch_membership_rebuild",
      [](Rng& rng, int) {
        // Mirrored channel sets: a[i] feeds the incremental batch, b[i] the
        // per-observation rebuilds. Same construction, same draw sequence.
        std::unique_ptr<WirelessChannel> a[kNumCases];
        std::unique_ptr<WirelessChannel> b[kNumCases];
        for (std::size_t i = 0; i < kNumCases; ++i) {
          a[i] = goldencase::make_golden_channel(i);
          b[i] = goldencase::make_golden_channel(i);
        }

        ChannelBatch inc;
        ChannelBatch::Scratch inc_scratch, ref_scratch;
        std::ptrdiff_t slot_of[kNumCases];
        for (std::size_t i = 0; i < kNumCases; ++i) slot_of[i] = -1;
        std::size_t live = 0;
        double t = 0.0;

        const int ops = 1 + rng.uniform_int(0, 39);
        for (int op = 0; op < ops; ++op) {
          const int kind = rng.uniform_int(0, 3);  // 2x churn : 2x sample
          if (kind == 0 && live < kNumCases) {
            std::size_t i = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(kNumCases) - 1));
            while (slot_of[i] >= 0) i = (i + 1) % kNumCases;
            slot_of[i] = static_cast<std::ptrdiff_t>(inc.add_link(a[i].get()));
            ++live;
          } else if (kind == 1 && live > 0) {
            std::size_t i = static_cast<std::size_t>(
                rng.uniform_int(0, static_cast<int>(kNumCases) - 1));
            while (slot_of[i] < 0) i = (i + 1) % kNumCases;
            inc.remove_link(static_cast<std::size_t>(slot_of[i]));
            slot_of[i] = -1;
            --live;
          } else if (live > 0) {
            t += 0.02;
            // Reference: a batch built from nothing over the live set.
            ChannelBatch rebuilt;
            std::ptrdiff_t ref_slot[kNumCases];
            for (std::size_t i = 0; i < kNumCases; ++i)
              ref_slot[i] = slot_of[i] >= 0
                                ? static_cast<std::ptrdiff_t>(
                                      rebuilt.add_link(b[i].get()))
                                : -1;
            std::vector<ChannelSample> ref_out(rebuilt.size());
            rebuilt.sample_range(t, 0, rebuilt.size(), ref_out.data(),
                                 ref_scratch);
            ChannelSample inc_out;
            for (std::size_t i = 0; i < kNumCases; ++i) {
              if (slot_of[i] < 0) continue;
              inc.sample_slot(t, static_cast<std::size_t>(slot_of[i]),
                              inc_out, inc_scratch);
              expect_samples_identical(
                  inc_out, ref_out[static_cast<std::size_t>(ref_slot[i])], i);
            }
          }
          ASSERT_EQ(inc.occupied(), live);
          ASSERT_EQ(inc.size() - inc.occupied(),
                    static_cast<std::size_t>([&] {
                      std::size_t holes = 0;
                      for (std::size_t s = 0; s < inc.size(); ++s)
                        holes += inc.is_hole(s) ? 1u : 0u;
                      return holes;
                    }()));
        }
      },
      64);
}

}  // namespace
}  // namespace mobiwlan
