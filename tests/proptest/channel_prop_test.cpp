// Property suite: sanity invariants of synthesized CSI over random
// scenarios, sample times, and mobility classes.
//
// The channel simulator is the repo's measurement instrument; if it emits
// non-finite gains, inconsistent accessor views, or non-Hermitian Gram
// matrices, every downstream experiment is garbage. These properties pin the
// algebraic contracts the PHY consumers (precoders, similarity, ESNR) rely
// on, for arbitrary seeds rather than the golden fixtures' eight.
#include <cmath>
#include <complex>

#include <gtest/gtest.h>

#include "chan/scenario.hpp"
#include "phy/csi.hpp"
#include "proptest.hpp"
#include "util/matrix.hpp"

namespace mobiwlan {
namespace {

using proptest::run_cases;

constexpr MobilityClass kAllClasses[] = {
    MobilityClass::kStatic, MobilityClass::kEnvironmental, MobilityClass::kMicro,
    MobilityClass::kMacro};

/// A random scenario and a CSI draw at a random time within 30 s.
CsiMatrix random_synthesized_csi(Rng& rng, int case_index) {
  Scenario s = make_scenario(kAllClasses[case_index % 4], rng);
  return s.channel->csi_at(rng.uniform(0.0, 30.0));
}

TEST(ChannelProperty, SynthesizedCsiIsFiniteWithPositiveEnergy) {
  run_cases("channel_finite_energy", [](Rng& rng, int i) {
    const CsiMatrix csi = random_synthesized_csi(rng, i);
    double sum_sq = 0.0;
    for (const cplx& z : csi.raw()) {
      EXPECT_TRUE(std::isfinite(z.real()) && std::isfinite(z.imag()));
      sum_sq += std::norm(z);
    }
    // A covered (associated) link never synthesizes an all-zero channel.
    EXPECT_GT(sum_sq, 0.0);
    // mean_power() is the same energy, normalized by the entry count.
    EXPECT_NEAR(csi.mean_power(),
                sum_sq / static_cast<double>(csi.raw().size()),
                1e-9 * (1.0 + sum_sq));
  });
}

TEST(ChannelProperty, AccessorViewsAgreeWithRawStorage) {
  run_cases("channel_accessor_consistency", [](Rng& rng, int i) {
    const CsiMatrix csi = random_synthesized_csi(rng, i);
    const std::size_t sc =
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(csi.n_subcarriers()) - 1));
    // subcarrier_matrix is H with rows = receive antennas (y = H x).
    const CMatrix h = csi.subcarrier_matrix(sc);
    ASSERT_EQ(h.rows(), csi.n_rx());
    ASSERT_EQ(h.cols(), csi.n_tx());
    for (std::size_t tx = 0; tx < csi.n_tx(); ++tx)
      for (std::size_t rx = 0; rx < csi.n_rx(); ++rx)
        EXPECT_EQ(h(rx, tx), csi.at(tx, rx, sc));
    // magnitudes() is |at(tx, rx, .)| across subcarriers.
    for (std::size_t tx = 0; tx < csi.n_tx(); ++tx)
      for (std::size_t rx = 0; rx < csi.n_rx(); ++rx) {
        const std::vector<double> mags = csi.magnitudes(tx, rx);
        ASSERT_EQ(mags.size(), csi.n_subcarriers());
        for (std::size_t k = 0; k < mags.size(); ++k)
          EXPECT_EQ(mags[k], std::abs(csi.at(tx, rx, k)));
      }
  });
}

TEST(ChannelProperty, GramMatrixIsHermitianWithEnergyTrace) {
  run_cases("channel_gram_hermitian", [](Rng& rng, int i) {
    const CsiMatrix csi = random_synthesized_csi(rng, i);
    const std::size_t sc =
        static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<int>(csi.n_subcarriers()) - 1));
    const CMatrix h = csi.subcarrier_matrix(sc);
    const CMatrix gram = h.hermitian() * h;  // n_tx x n_tx
    ASSERT_EQ(gram.rows(), csi.n_tx());
    ASSERT_EQ(gram.cols(), csi.n_tx());
    const double scale = h.frobenius_norm() * h.frobenius_norm() + 1.0;
    double trace = 0.0;
    for (std::size_t r = 0; r < gram.rows(); ++r) {
      for (std::size_t c = 0; c < gram.cols(); ++c) {
        // G = H^H H must be Hermitian; its diagonal real and non-negative.
        EXPECT_NEAR(std::abs(gram(r, c) - std::conj(gram(c, r))), 0.0,
                    1e-12 * scale);
      }
      EXPECT_NEAR(gram(r, r).imag(), 0.0, 1e-12 * scale);
      EXPECT_GE(gram(r, r).real(), -1e-12 * scale);
      trace += gram(r, r).real();
    }
    // tr(H^H H) == ||H||_F^2: the per-subcarrier energy is accessor-
    // independent.
    EXPECT_NEAR(trace, h.frobenius_norm() * h.frobenius_norm(),
                1e-9 * scale);
  });
}

TEST(ChannelProperty, TrueCsiIsDeterministic) {
  run_cases("channel_true_csi_deterministic", [](Rng& rng, int i) {
    Scenario s = make_scenario(kAllClasses[i % 4], rng);
    const double t = rng.uniform(0.0, 30.0);
    // csi_true is const ground truth: repeated queries at the same t are
    // byte-identical (no hidden RNG draws), including after noisy reads.
    const CsiMatrix first = s.channel->csi_true(t);
    (void)s.channel->csi_at(t);  // noisy read must not perturb ground truth
    const CsiMatrix again = s.channel->csi_true(t);
    ASSERT_EQ(first.raw().size(), again.raw().size());
    for (std::size_t k = 0; k < first.raw().size(); ++k)
      EXPECT_EQ(first.raw()[k], again.raw()[k]);
  });
}

}  // namespace
}  // namespace mobiwlan
