// Property suite: the mobility classifier's decision depends only on the
// information the paper says it does.
//
// Eq. (1) correlates per-subcarrier magnitude profiles, so the decision must
// be invariant under (a) a consistent relabeling of the subcarriers — the
// chipset's reporting order is a driver detail — and (b) a global phase
// rotation of each CSI frame — the receiver's carrier-phase offset is
// arbitrary packet-to-packet and carries no mobility information. Both
// transforms reorder/perturb floating-point sums, so similarities match to
// ~1e-9, not bit-exactly; the decisions must match exactly.
#include "core/mobility_classifier.hpp"

#include <cmath>
#include <complex>
#include <vector>

#include <gtest/gtest.h>

#include "chan/scenario.hpp"
#include "core/csi_similarity.hpp"
#include "proptest.hpp"

namespace mobiwlan {
namespace {

using proptest::gen_permutation;
using proptest::run_cases;

constexpr MobilityClass kAllClasses[] = {
    MobilityClass::kStatic, MobilityClass::kEnvironmental, MobilityClass::kMicro,
    MobilityClass::kMacro};

/// The same CSI frame with subcarriers relabeled by `perm`.
CsiMatrix permute_subcarriers(const CsiMatrix& in,
                              const std::vector<std::size_t>& perm) {
  CsiMatrix out(in.n_tx(), in.n_rx(), in.n_subcarriers());
  for (std::size_t tx = 0; tx < in.n_tx(); ++tx)
    for (std::size_t rx = 0; rx < in.n_rx(); ++rx)
      for (std::size_t sc = 0; sc < in.n_subcarriers(); ++sc)
        out.at(tx, rx, perm[sc]) = in.at(tx, rx, sc);
  return out;
}

/// The same CSI frame rotated by a global phase (all entries times e^{j phi}).
CsiMatrix rotate_phase(const CsiMatrix& in, double phi) {
  CsiMatrix out = in;
  const cplx rot = std::polar(1.0, phi);
  for (cplx& z : out.raw()) z *= rot;
  return out;
}

/// Feeds `frames` to classifiers receiving the original and a transformed
/// stream; asserts identical decisions and near-identical similarities.
void expect_invariant_decisions(
    const std::vector<CsiMatrix>& frames,
    const std::vector<CsiMatrix>& transformed_frames) {
  MobilityClassifier original;
  MobilityClassifier transformed;
  for (std::size_t k = 0; k < frames.size(); ++k) {
    const double t = 0.5 * static_cast<double>(k);
    original.on_csi(t, frames[k]);
    transformed.on_csi(t, transformed_frames[k]);
    ASSERT_EQ(original.mode(), transformed.mode()) << "at frame " << k;
    const auto s0 = original.similarity();
    const auto s1 = transformed.similarity();
    ASSERT_EQ(s0.has_value(), s1.has_value()) << "at frame " << k;
    if (s0) EXPECT_NEAR(*s0, *s1, 1e-9) << "at frame " << k;
  }
}

/// A 12 s CSI stream at the classifier's 0.5 s decimation period.
std::vector<CsiMatrix> random_csi_stream(Rng& rng, int case_index) {
  Scenario s = make_scenario(kAllClasses[case_index % 4], rng);
  std::vector<CsiMatrix> frames;
  for (double t = 0.0; t < 12.0; t += 0.5)
    frames.push_back(s.channel->csi_at(t));
  return frames;
}

TEST(ClassifierProperty, DecisionInvariantUnderSubcarrierPermutation) {
  run_cases("classifier_permutation_invariance", [](Rng& rng, int i) {
    const std::vector<CsiMatrix> frames = random_csi_stream(rng, i);
    const std::vector<std::size_t> perm =
        gen_permutation(rng, frames.front().n_subcarriers());
    std::vector<CsiMatrix> permuted;
    for (const CsiMatrix& f : frames)
      permuted.push_back(permute_subcarriers(f, perm));
    expect_invariant_decisions(frames, permuted);
  });
}

TEST(ClassifierProperty, DecisionInvariantUnderGlobalPhaseRotation) {
  run_cases("classifier_phase_invariance", [](Rng& rng, int i) {
    const std::vector<CsiMatrix> frames = random_csi_stream(rng, i);
    std::vector<CsiMatrix> rotated;
    // A fresh phase per frame: carrier phase is not coherent across packets.
    for (const CsiMatrix& f : frames)
      rotated.push_back(rotate_phase(f, rng.phase()));
    expect_invariant_decisions(frames, rotated);
  });
}

TEST(ClassifierProperty, SimilarityInvariantUnderJointTransforms) {
  run_cases("similarity_transform_invariance", [](Rng& rng, int) {
    // Directly on Eq. (1): permuting both arguments with one permutation and
    // rotating each by independent phases leaves the similarity unchanged
    // (up to the reordered-summation rounding).
    Scenario s = make_scenario(
        kAllClasses[rng.uniform_int(0, 3)], rng);
    const CsiMatrix a = s.channel->csi_at(0.0);
    const CsiMatrix b = s.channel->csi_at(rng.uniform(0.25, 2.0));
    const std::vector<std::size_t> perm =
        gen_permutation(rng, a.n_subcarriers());
    const CsiMatrix ta = rotate_phase(permute_subcarriers(a, perm),
                                      rng.phase());
    const CsiMatrix tb = rotate_phase(permute_subcarriers(b, perm),
                                      rng.phase());
    EXPECT_NEAR(csi_similarity(ta, tb), csi_similarity(a, b), 1e-9);
  });
}

}  // namespace
}  // namespace mobiwlan
