// Property suite: invariants of the fault-injection layer over random
// scenarios, fault plans, and sampling cadences.
//
// The three contracts that keep faulted experiments meaningful:
//   * an all-zero FaultPlan is bitwise invisible — same channel calls, same
//     draws, same values as code with no fault layer at all;
//   * fault decisions are a pure function of (plan.seed, kind, unit) — two
//     observers with the same plan over twin channels agree call-for-call,
//     which is what makes faulted runs --jobs-independent;
//   * staleness is a hard bound — a delivered reading describes the channel
//     at t - delay_s, never anything newer.
#include <gtest/gtest.h>

#include "chan/scenario.hpp"
#include "fault/fault.hpp"
#include "proptest.hpp"

namespace mobiwlan {
namespace {

using proptest::run_cases;

constexpr MobilityClass kAllClasses[] = {
    MobilityClass::kStatic, MobilityClass::kEnvironmental, MobilityClass::kMicro,
    MobilityClass::kMacro};

/// Twin scenarios for the same class/seed: byte-identical channels whose
/// generators advance in lockstep as long as both sides make the same calls.
struct Twins {
  Scenario a;
  Scenario b;
};

Twins make_twins(std::uint64_t seed, int case_index) {
  const MobilityClass cls = kAllClasses[case_index % 4];
  Rng ra(seed), rb(seed);
  return {make_scenario(cls, ra), make_scenario(cls, rb)};
}

/// A random plan exercising every fault shape at once.
FaultPlan random_plan(Rng& rng) {
  FaultPlan plan;
  plan.seed = rng.next_u64();
  plan.csi.drop_prob = rng.uniform(0.0, 0.6);
  plan.csi.delay_s = rng.uniform(0.0, 1.0);
  plan.tof.drop_prob = rng.uniform(0.0, 0.6);
  plan.tof.burst_rate_hz = rng.uniform(0.0, 0.5);
  plan.tof.burst_min_s = 0.5;
  plan.tof.burst_max_s = rng.uniform(0.5, 2.0);
  plan.rssi.drop_prob = rng.uniform(0.0, 0.3);
  plan.feedback.drop_prob = rng.uniform(0.0, 0.3);
  return plan;
}

TEST(FaultProperty, ZeroPlanIsBitwiseInvisible) {
  run_cases("fault_zero_plan_identity", [](Rng& rng, int i) {
    const std::uint64_t seed = rng.next_u64();
    Twins tw = make_twins(seed, i);
    DegradedObservables obs(*tw.a.channel, FaultPlan{});
    const double period = rng.uniform(0.05, 0.5);
    for (double t = 0.0; t < 10.0; t += period) {
      const auto csi = obs.csi(t);
      ASSERT_TRUE(csi.has_value());
      ASSERT_EQ(csi->raw(), tw.b.channel->csi_at(t).raw());
      const auto tof = obs.tof_cycles(t);
      ASSERT_TRUE(tof.has_value());
      ASSERT_EQ(*tof, tw.b.channel->tof_cycles(t));
      const auto rssi = obs.rssi_dbm(t);
      ASSERT_TRUE(rssi.has_value());
      ASSERT_EQ(*rssi, tw.b.channel->rssi_dbm(t));
      ASSERT_TRUE(obs.feedback_delivered(t));
    }
  }, 48);
}

TEST(FaultProperty, SamePlanIsReproducibleAcrossObservers) {
  run_cases("fault_same_plan_reproducible", [](Rng& rng, int i) {
    const std::uint64_t seed = rng.next_u64();
    Twins tw = make_twins(seed, i);
    const FaultPlan plan = random_plan(rng);
    const std::uint64_t unit = rng.next_u64() % 8;
    DegradedObservables oa(*tw.a.channel, plan, unit);
    DegradedObservables ob(*tw.b.channel, plan, unit);
    const double period = rng.uniform(0.05, 0.5);
    int delivered = 0;
    for (double t = 0.0; t < 10.0; t += period) {
      // Delivery is a pure function of (plan.seed, kind, unit): both
      // observers must agree on every drop, and on the delivered values —
      // disagreement would also desynchronize the twin channels' RNGs and
      // cascade, so any divergence shows up immediately.
      const auto ca = oa.csi(t);
      const auto cb = ob.csi(t);
      ASSERT_EQ(ca.has_value(), cb.has_value());
      if (ca) {
        ASSERT_EQ(ca->raw(), cb->raw());
        ++delivered;
      }
      const auto ta = oa.tof_cycles(t);
      const auto tb = ob.tof_cycles(t);
      ASSERT_EQ(ta.has_value(), tb.has_value());
      if (ta) ASSERT_EQ(*ta, *tb);
      const auto ra = oa.rssi_dbm(t);
      const auto rb = ob.rssi_dbm(t);
      ASSERT_EQ(ra.has_value(), rb.has_value());
      if (ra) ASSERT_EQ(*ra, *rb);
      ASSERT_EQ(oa.feedback_delivered(t), ob.feedback_delivered(t));
    }
    // drop_prob <= 0.6 over >= 20 samples: statistically impossible to lose
    // everything; guards against a deliver() that is accidentally all-false.
    EXPECT_GT(delivered, 0);
  }, 48);
}

TEST(FaultProperty, DeliveredReadingIsNeverNewerThanInjectionDelay) {
  run_cases("fault_staleness_bound", [](Rng& rng, int i) {
    const std::uint64_t seed = rng.next_u64();
    Twins tw = make_twins(seed, i);
    FaultPlan plan;
    plan.seed = rng.next_u64();
    plan.csi.drop_prob = rng.uniform(0.0, 0.5);
    plan.csi.delay_s = rng.uniform(0.1, 1.5);
    DegradedObservables obs(*tw.a.channel, plan);
    // Oracle: a second stream with the same plan predicts the drops, and the
    // twin channel — called only at delivered instants, at the delayed time —
    // stays in RNG lockstep with the observer.
    FaultStream oracle = make_stream(plan, FaultStreamKind::kCsi);
    const double period = rng.uniform(0.1, 0.6);
    for (double t = 0.0; t < 12.0; t += period) {
      const auto csi = obs.csi(t);
      ASSERT_EQ(csi.has_value(), oracle.deliver(t));
      if (!csi) continue;
      // The classifier (or any consumer) reads the channel as it was
      // delay_s ago — exactly, not approximately — clamped at the epoch
      // (before t = delay_s no export could have arrived yet).
      const double stale_t = oracle.measured_t(t);
      const double shifted = t - plan.csi.delay_s;
      ASSERT_EQ(stale_t, shifted > 0.0 ? shifted : 0.0);
      ASSERT_LE(stale_t, t);
      ASSERT_EQ(csi->raw(), tw.b.channel->csi_at(stale_t).raw());
    }
  }, 48);
}

}  // namespace
}  // namespace mobiwlan
