// Property suite: the allocation-free ring-buffer filters agree with naive
// deque/sort reference implementations on random streams.
//
// The ring buffers (MovingAverage, TrendWindow) and the in-place selection
// median (MedianAggregator) replaced straightforward deque/sort code for the
// hot classification path; these properties keep them semantically pinned to
// the simple versions across random windows, stream lengths, and value
// scales — including plateau-heavy quantized streams like real ToF cycles.
#include "util/filters.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <vector>

#include <gtest/gtest.h>

#include "proptest.hpp"

namespace mobiwlan {
namespace {

using proptest::run_cases;

/// Reference moving average: a deque of the last `window` values.
class DequeAverage {
 public:
  explicit DequeAverage(std::size_t window) : window_(window == 0 ? 1 : window) {}
  void add(double x) {
    values_.push_back(x);
    if (values_.size() > window_) values_.pop_front();
  }
  double value() const {
    if (values_.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : values_) sum += v;
    return sum / static_cast<double>(values_.size());
  }
  std::size_t count() const { return values_.size(); }

 private:
  std::size_t window_;
  std::deque<double> values_;
};

/// Reference trend window mirroring TrendWindow's documented semantics.
class DequeTrend {
 public:
  DequeTrend(std::size_t window, double slack)
      : window_(window < 2 ? 2 : window), slack_(slack) {}
  void add(double x) {
    values_.push_back(x);
    if (values_.size() > window_) values_.pop_front();
  }
  bool increasing(double min_change) const {
    if (values_.size() < window_) return false;
    for (std::size_t i = 1; i < values_.size(); ++i)
      if (values_[i] < values_[i - 1] - slack_) return false;
    return values_.back() - values_.front() > min_change;
  }
  bool decreasing(double min_change) const {
    if (values_.size() < window_) return false;
    for (std::size_t i = 1; i < values_.size(); ++i)
      if (values_[i] > values_[i - 1] + slack_) return false;
    return values_.front() - values_.back() > min_change;
  }

 private:
  std::size_t window_;
  double slack_;
  std::deque<double> values_;
};

/// A stream that mixes smooth noise with quantized plateaus and jumps —
/// the shapes clock-cycle ToF readings actually take.
std::vector<double> random_stream(Rng& rng, std::size_t n) {
  std::vector<double> out;
  double level = rng.uniform(-50.0, 50.0);
  while (out.size() < n) {
    const int kind = rng.uniform_int(0, 2);
    const int span = rng.uniform_int(1, 6);
    for (int k = 0; k < span && out.size() < n; ++k) {
      if (kind == 0) level += rng.gaussian(0.0, 2.0);   // wander
      if (kind == 1) level = std::round(level);          // plateau (quantized)
      if (kind == 2 && k == 0) level += rng.uniform(-20.0, 20.0);  // jump
      out.push_back(level);
    }
  }
  return out;
}

TEST(FiltersProperty, MovingAverageMatchesDequeReference) {
  run_cases("moving_average_vs_deque", [](Rng& rng, int) {
    const std::size_t window =
        static_cast<std::size_t>(rng.uniform_int(1, 16));
    MovingAverage avg(window);
    DequeAverage ref(window);
    const std::vector<double> xs =
        random_stream(rng, static_cast<std::size_t>(rng.uniform_int(1, 80)));
    for (const double x : xs) {
      avg.add(x);
      ref.add(x);
      ASSERT_EQ(avg.count(), ref.count());
      // The ring keeps a running sum; tolerate its accumulation drift.
      ASSERT_NEAR(avg.value(), ref.value(), 1e-9);
    }
  });
}

TEST(FiltersProperty, MovingAverageResetForgetsHistory) {
  run_cases("moving_average_reset", [](Rng& rng, int) {
    const std::size_t window =
        static_cast<std::size_t>(rng.uniform_int(1, 8));
    MovingAverage avg(window);
    for (const double x : random_stream(rng, 20)) avg.add(x);
    avg.reset();
    EXPECT_EQ(avg.count(), 0u);
    EXPECT_EQ(avg.value(), 0.0);
    MovingAverage fresh(window);
    for (const double x : random_stream(rng, 10)) {
      avg.add(x);
      fresh.add(x);
      ASSERT_EQ(avg.value(), fresh.value());
    }
  });
}

TEST(FiltersProperty, TrendWindowMatchesDequeReference) {
  run_cases("trend_window_vs_deque", [](Rng& rng, int) {
    const std::size_t window =
        static_cast<std::size_t>(rng.uniform_int(2, 8));
    const double slack = rng.uniform(0.0, 1.0);
    const double min_change = rng.uniform(0.0, 4.0);
    TrendWindow trend(window, slack);
    DequeTrend ref(window, slack);
    const std::vector<double> xs =
        random_stream(rng, static_cast<std::size_t>(rng.uniform_int(1, 60)));
    for (std::size_t k = 0; k < xs.size(); ++k) {
      trend.add(xs[k]);
      ref.add(xs[k]);
      ASSERT_EQ(trend.increasing(min_change), ref.increasing(min_change))
          << "after " << (k + 1) << " values";
      ASSERT_EQ(trend.decreasing(min_change), ref.decreasing(min_change))
          << "after " << (k + 1) << " values";
    }
  });
}

TEST(FiltersProperty, MedianAggregatorMatchesSortReference) {
  run_cases("median_vs_sort", [](Rng& rng, int) {
    MedianAggregator agg;
    const std::vector<double> xs =
        random_stream(rng, static_cast<std::size_t>(rng.uniform_int(1, 50)));
    for (const double x : xs) agg.add(x);
    ASSERT_EQ(agg.pending_count(), xs.size());
    std::vector<double> sorted = xs;
    std::sort(sorted.begin(), sorted.end());
    const std::size_t mid = sorted.size() / 2;
    const double expected = sorted.size() % 2 == 1
                                ? sorted[mid]
                                : (sorted[mid - 1] + sorted[mid]) / 2.0;
    const auto m = agg.flush();
    ASSERT_TRUE(m.has_value());
    EXPECT_EQ(*m, expected);
    // flush() clears: a second flush has nothing.
    EXPECT_FALSE(agg.flush().has_value());
  });
}

}  // namespace
}  // namespace mobiwlan
