// Property suite: localization invariants over random queries against a
// small surveyed fingerprint database.
//
// The ISSUE-level claims: a locate() result is invariant under the order
// APs were observed in (the locator sorts everything into ascending-AP /
// ascending-cell order internally); the CRISLoc trimmed distance can only
// drop the worst per-AP terms, so it never exceeds the untrimmed mean; a
// query seeded with a cell's stored fingerprint returns that cell at
// distance exactly 0; and the steady-state query path performs zero heap
// allocations (this binary links mobiwlan_alloc_hook to count them).
#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "loc/fingerprint_db.hpp"
#include "loc/locator.hpp"
#include "proptest.hpp"
#include "util/alloc_count.hpp"

namespace mobiwlan::loc {
namespace {

using proptest::run_cases;

/// One surveyed 8x8 / 3-AP database shared by every property (built once;
/// all properties are read-only against it).
const FingerprintDb& prop_db() {
  static const FingerprintDb db = [] {
    FingerprintDbConfig cfg;
    cfg.cols = 8;
    cfg.rows = 8;
    cfg.pitch_m = 4.0;
    cfg.snapshots = 2;
    cfg.coverage_radius_m = 60.0;
    cfg.seed = 20140204;
    FingerprintDb d(cfg, {Vec2{4.0, 4.0}, Vec2{28.0, 4.0}, Vec2{16.0, 28.0}},
                    ChannelConfig{});
    d.build();
    return d;
  }();
  return db;
}

/// A random per-AP observation set: CSI plus an RSSI that straddles the
/// audibility floor (some observations are deliberately discarded by
/// observe_ap — the invariants must hold through that filter too).
struct Observation {
  CsiMatrix csi;
  double rssi_dbm;
};

std::vector<Observation> random_observations(Rng& rng, std::size_t n_aps) {
  std::vector<Observation> obs(n_aps);
  for (std::size_t ap = 0; ap < n_aps; ++ap) {
    obs[ap].csi = CsiMatrix(3, 2, 52);
    for (auto& z : obs[ap].csi.raw())
      z = rng.complex_gaussian(rng.uniform(0.25, 4.0));
    // Mostly audible, occasionally below the -82 dBm floor.
    obs[ap].rssi_dbm = rng.uniform(-90.0, -40.0);
  }
  return obs;
}

void observe_in_order(const Locator& loc, Locator::Scratch& s,
                      const std::vector<Observation>& obs,
                      const std::vector<std::size_t>& order) {
  loc.begin_query(s);
  for (const std::size_t ap : order)
    loc.observe_ap(s, ap, obs[ap].csi, obs[ap].rssi_dbm);
}

TEST(LocProperty, ResultInvariantUnderObservationOrder) {
  run_cases("loc_observe_permutation", [](Rng& rng, int) {
    const FingerprintDb& db = prop_db();
    Locator loc(&db, LocatorConfig{});
    const std::vector<Observation> obs = random_observations(rng, db.n_aps());

    std::vector<std::size_t> order(db.n_aps());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    Locator::Scratch s_fwd;
    observe_in_order(loc, s_fwd, obs, order);
    const LocEstimate a = loc.locate(s_fwd);

    // Fisher-Yates shuffle of the observation order.
    for (std::size_t i = order.size(); i > 1; --i)
      std::swap(order[i - 1], order[static_cast<std::size_t>(
                                  rng.uniform_int(0, static_cast<int>(i) - 1))]);
    Locator::Scratch s_perm;
    observe_in_order(loc, s_perm, obs, order);
    const LocEstimate b = loc.locate(s_perm);

    EXPECT_EQ(a.valid, b.valid);
    EXPECT_EQ(a.cell, b.cell);
    EXPECT_EQ(a.distance, b.distance);
    EXPECT_EQ(a.position.x, b.position.x);
    EXPECT_EQ(a.position.y, b.position.y);
  });
}

TEST(LocProperty, TrimmedDistanceNeverExceedsUntrimmed) {
  run_cases("loc_trimmed_leq_untrimmed", [](Rng& rng, int) {
    const FingerprintDb& db = prop_db();
    LocatorConfig cfg;
    cfg.trim = 1;
    cfg.min_kept_aps = 1;  // let the trim engage even on 2-AP overlaps
    Locator loc(&db, cfg);
    const std::vector<Observation> obs = random_observations(rng, db.n_aps());
    std::vector<std::size_t> order(db.n_aps());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
    Locator::Scratch s;
    observe_in_order(loc, s, obs, order);
    if (s.mask == 0) return;  // every AP drawn inaudible: nothing to compare

    const std::size_t cell = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(db.n_cells()) - 1));
    const double trimmed = loc.fingerprint_distance(s, cell);
    const double full = loc.fingerprint_distance(s, cell, 0);
    if (!std::isfinite(full)) {
      EXPECT_FALSE(std::isfinite(trimmed));  // no shared AP either way
      return;
    }
    // Dropping the worst per-AP terms can only lower the mean.
    EXPECT_LE(trimmed, full + 1e-12);
  });
}

TEST(LocProperty, StoredFingerprintQueryReturnsOwnCellAtZeroDistance) {
  run_cases("loc_self_query", [](Rng& rng, int) {
    const FingerprintDb& db = prop_db();
    Locator loc(&db, LocatorConfig{});
    Locator::Scratch s;
    const std::size_t cell = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(db.n_cells()) - 1));
    loc.seed_query_from_cell(s, cell);
    ASSERT_NE(s.mask, 0u);  // the 8x8 fixture covers every cell
    EXPECT_EQ(loc.fingerprint_distance(s, cell), 0.0);
    const LocEstimate est = loc.locate(s);
    EXPECT_TRUE(est.valid);
    EXPECT_EQ(est.cell, cell);
    EXPECT_EQ(est.distance, 0.0);
  });
}

TEST(LocProperty, SteadyStateQueriesAreAllocationFree) {
  ASSERT_TRUE(alloc_hook_active());
  const FingerprintDb& db = prop_db();
  Locator loc(&db, LocatorConfig{});
  Rng rng(proptest::kSuiteSeed);
  std::vector<Observation> obs = random_observations(rng, db.n_aps());
  // Pin every AP audible: the measured loop asserts a valid estimate.
  for (std::size_t ap = 0; ap < obs.size(); ++ap)
    obs[ap].rssi_dbm = -55.0 - 2.0 * static_cast<double>(ap);
  std::vector<std::size_t> order(db.n_aps());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;

  Locator::Scratch s;
  // Warmup sizes every scratch buffer (begin_query reserves, the first
  // locate grows the selection/candidate vectors to their steady size).
  for (int warm = 0; warm < 4; ++warm) {
    observe_in_order(loc, s, obs, order);
    (void)loc.locate(s);
    for (std::size_t cell = 0; cell < db.n_cells(); cell += 17)
      (void)loc.fingerprint_distance(s, cell);
  }

  const std::uint64_t allocs0 = alloc_count();
  for (int i = 0; i < 64; ++i) {
    observe_in_order(loc, s, obs, order);
    const LocEstimate est = loc.locate(s);
    ASSERT_TRUE(est.valid);
    for (std::size_t cell = 0; cell < db.n_cells(); cell += 17)
      (void)loc.fingerprint_distance(s, cell);
  }
  EXPECT_EQ(alloc_count() - allocs0, 0u)
      << "begin_query/observe_ap/locate allocated on the steady-state path";
}

}  // namespace
}  // namespace mobiwlan::loc
