// Property suite: the campus handover mailbox (S*S SPSC lanes) conserves
// messages under arbitrary send/drain interleavings.
//
// The campus determinism proof leans on three mailbox properties — nothing
// is ever lost or duplicated (a dropped handover would strand a session; a
// duplicated one would double-fold its stats), delivery is FIFO per sender
// with a deterministic cross-sender drain order, and a full lane rejects
// without blocking (back-pressure must surface as a boolean, never a
// deadlock). These properties pin all three across random shard counts,
// lane capacities, and operation interleavings, with move-only payloads
// standing in for the unique_ptr<Session> the campus actually ships.
// The genuinely concurrent (TSan-targeted) exercise lives in
// tests/campus/mailbox_stress_test.cpp.
#include "campus/mailbox.hpp"

#include <cstdint>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "proptest.hpp"

namespace mobiwlan {
namespace {

using campus::HandoverMailbox;
using proptest::run_cases;

std::uint64_t encode(std::size_t src, std::size_t dst, std::uint64_t seq) {
  return (static_cast<std::uint64_t>(src) << 48) |
         (static_cast<std::uint64_t>(dst) << 32) | seq;
}

TEST(MailboxProp, ConservesAndOrdersUnderRandomInterleavings) {
  run_cases("mailbox conserves and orders messages", [](Rng& rng, int) {
    const auto shards = static_cast<std::size_t>(rng.uniform_int(1, 5));
    const auto capacity = static_cast<std::size_t>(rng.uniform_int(1, 12));
    HandoverMailbox<std::uint64_t> mb(shards, capacity);

    // next_seq[src][dst]: sequence number of the next successful send;
    // next_expected[src][dst]: sequence the consumer must see next.
    std::vector<std::vector<std::uint64_t>> next_seq(
        shards, std::vector<std::uint64_t>(shards, 0));
    std::vector<std::vector<std::uint64_t>> next_expected = next_seq;
    std::uint64_t sent = 0, delivered = 0, rejected = 0;

    auto drain = [&](std::size_t dst) {
      std::size_t last_src = 0;
      mb.drain_to(dst, [&](std::uint64_t msg) {
        const auto src = static_cast<std::size_t>(msg >> 48);
        const auto msg_dst = static_cast<std::size_t>((msg >> 32) & 0xffff);
        const std::uint64_t seq = msg & 0xffffffffULL;
        EXPECT_EQ(msg_dst, dst) << "message delivered to the wrong shard";
        EXPECT_GE(src, last_src) << "drain order not ascending in source";
        last_src = src;
        EXPECT_EQ(seq, next_expected[src][dst]) << "per-sender FIFO violated";
        ++next_expected[src][dst];
        ++delivered;
      });
    };

    const int ops = rng.uniform_int(50, 400);
    for (int k = 0; k < ops; ++k) {
      if (rng.chance(0.7)) {
        const auto src =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(shards) - 1));
        const auto dst =
            static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(shards) - 1));
        std::uint64_t msg = encode(src, dst, next_seq[src][dst]);
        const std::uint64_t original = msg;
        if (mb.try_send(src, dst, msg)) {
          ++next_seq[src][dst];
          ++sent;
        } else {
          // Rejection must leave the caller's message intact (the campus
          // keeps hosting the session for one more epoch).
          EXPECT_EQ(msg, original);
          ++rejected;
        }
      } else {
        drain(static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(shards) - 1)));
      }
    }
    for (std::size_t dst = 0; dst < shards; ++dst) drain(dst);

    // Conservation: every accepted message came out exactly once.
    EXPECT_EQ(delivered, sent);
    for (std::size_t s = 0; s < shards; ++s)
      for (std::size_t d = 0; d < shards; ++d)
        EXPECT_EQ(next_expected[s][d], next_seq[s][d]);
    // Back-pressure only ever happens against a bounded lane.
    if (rejected > 0) EXPECT_LE(capacity, mb.lane_capacity());
  });
}

TEST(MailboxProp, MoveOnlyPayloadsSurviveRejectionAndDelivery) {
  run_cases("mailbox move-only payloads", [](Rng& rng, int) {
    const auto shards = static_cast<std::size_t>(rng.uniform_int(1, 4));
    const auto capacity = static_cast<std::size_t>(rng.uniform_int(1, 6));
    HandoverMailbox<std::unique_ptr<std::uint64_t>> mb(shards, capacity);

    std::uint64_t sent = 0, delivered = 0, payload_sum_in = 0,
                  payload_sum_out = 0;
    const int ops = rng.uniform_int(30, 200);
    for (int k = 0; k < ops; ++k) {
      if (rng.chance(0.6)) {
        const auto src = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(shards) - 1));
        const auto dst = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(shards) - 1));
        const auto value = static_cast<std::uint64_t>(k + 1);
        auto msg = std::make_unique<std::uint64_t>(value);
        if (mb.try_send(src, dst, msg)) {
          EXPECT_EQ(msg, nullptr) << "accepted message must be moved out";
          payload_sum_in += value;
          ++sent;
        } else {
          // A rejected unique_ptr must still own its payload — losing it
          // here would leak (or destroy) a live Session in the campus.
          ASSERT_NE(msg, nullptr);
          EXPECT_EQ(*msg, value);
        }
      } else {
        const auto dst = static_cast<std::size_t>(
            rng.uniform_int(0, static_cast<int>(shards) - 1));
        mb.drain_to(dst, [&](std::unique_ptr<std::uint64_t> m) {
          ASSERT_NE(m, nullptr);
          payload_sum_out += *m;
          ++delivered;
        });
      }
    }
    for (std::size_t dst = 0; dst < shards; ++dst)
      mb.drain_to(dst, [&](std::unique_ptr<std::uint64_t> m) {
        ASSERT_NE(m, nullptr);
        payload_sum_out += *m;
        ++delivered;
      });
    EXPECT_EQ(delivered, sent);
    EXPECT_EQ(payload_sum_out, payload_sum_in);
  });
}

TEST(MailboxProp, FullLaneRejectsWithoutBlockingAndRecoversAfterDrain) {
  run_cases("mailbox capacity back-pressure", [](Rng& rng, int) {
    const auto shards = static_cast<std::size_t>(rng.uniform_int(2, 5));
    const auto min_capacity = static_cast<std::size_t>(rng.uniform_int(1, 9));
    HandoverMailbox<std::uint64_t> mb(shards, min_capacity);
    const std::size_t cap = mb.lane_capacity();
    const auto src = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(shards) - 1));
    const auto dst = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(shards) - 1));

    // Fill exactly to capacity; the next send must fail immediately.
    for (std::uint64_t seq = 0; seq < cap; ++seq) {
      std::uint64_t msg = encode(src, dst, seq);
      ASSERT_TRUE(mb.try_send(src, dst, msg)) << "seq " << seq;
    }
    std::uint64_t overflow = encode(src, dst, cap);
    EXPECT_FALSE(mb.try_send(src, dst, overflow));
    EXPECT_EQ(overflow, encode(src, dst, cap));

    // Other lanes are unaffected by one lane's back-pressure.
    const std::size_t other = (dst + 1) % shards;
    if (other != dst) {
      std::uint64_t side = encode(src, other, 0);
      EXPECT_TRUE(mb.try_send(src, other, side));
    }

    // Drain delivers the full lane FIFO, after which the lane accepts again.
    std::uint64_t expected = 0;
    mb.drain_to(dst, [&](std::uint64_t msg) {
      EXPECT_EQ(msg & 0xffffffffULL, expected);
      ++expected;
    });
    EXPECT_EQ(expected, cap);
    EXPECT_GE(mb.max_depth(), cap);
    std::uint64_t again = encode(src, dst, cap);
    EXPECT_TRUE(mb.try_send(src, dst, again));
  });
}

}  // namespace
}  // namespace mobiwlan
