// proptest.hpp — a tiny seeded property-testing harness on top of GoogleTest.
//
// A property is a callable taking (Rng&, case index); run_cases() executes it
// for N independently-seeded cases. Determinism and replay:
//
//   * case seeds derive from a fixed suite seed and the property name
//     (counter-based, like the runtime experiment runner), so a failure is
//     reproducible run-to-run and independent of other properties;
//   * when a case fails, the harness reports the exact 64-bit seed and stops;
//     re-running with MOBIWLAN_PROPTEST_SEED=<seed> executes only that case;
//   * MOBIWLAN_PROPTEST_CASES scales the case count (soak testing).
//
// There is no shrinking: generators here draw simple numeric inputs whose
// failing values are readable directly from the assertion message.
#pragma once

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <functional>
#include <vector>

#include "util/rng.hpp"

namespace mobiwlan::proptest {

/// Suite seed all properties derive their cases from (the master seed the
/// benches use, so "the seed policy" is one number repo-wide).
inline constexpr std::uint64_t kSuiteSeed = 20140204;

/// Cases per property unless MOBIWLAN_PROPTEST_CASES overrides.
inline constexpr int kDefaultCases = 128;

/// FNV-1a, used to decorrelate the case streams of different properties.
constexpr std::uint64_t fnv1a(const char* s) {
  std::uint64_t h = 1469598103934665603ULL;
  for (; *s; ++s) h = (h ^ static_cast<unsigned char>(*s)) * 1099511628211ULL;
  return h;
}

inline int case_count() {
  if (const char* env = std::getenv("MOBIWLAN_PROPTEST_CASES");
      env && *env) {
    const long n = std::strtol(env, nullptr, 10);
    if (n > 0) return static_cast<int>(n);
  }
  return kDefaultCases;
}

/// Runs `body(rng, case_index)` for `cases` independently-seeded cases,
/// stopping at the first falsified case with its replay seed in the failure
/// message. With MOBIWLAN_PROPTEST_SEED set, runs that single case instead.
inline void run_cases(const char* property,
                      const std::function<void(Rng&, int)>& body,
                      int cases = case_count()) {
  if (const char* env = std::getenv("MOBIWLAN_PROPTEST_SEED");
      env && *env) {
    const std::uint64_t seed = std::strtoull(env, nullptr, 10);
    Rng rng(seed);
    SCOPED_TRACE(::testing::Message() << "property '" << property
                                      << "' replaying seed " << seed);
    body(rng, 0);
    return;
  }

  const Rng master(kSuiteSeed ^ fnv1a(property));
  const auto* result =
      ::testing::UnitTest::GetInstance()->current_test_info()->result();
  for (int i = 0; i < cases; ++i) {
    Rng rng = master.stream(static_cast<std::uint64_t>(i));
    const std::uint64_t case_seed = rng.seed();
    const int parts_before = result->total_part_count();
    {
      SCOPED_TRACE(::testing::Message()
                   << "property '" << property << "' case " << i << "/"
                   << cases << " (seed " << case_seed << ")");
      body(rng, i);
    }
    if (result->total_part_count() > parts_before) {
      ADD_FAILURE() << "property '" << property << "' falsified at case " << i
                    << "; replay with MOBIWLAN_PROPTEST_SEED=" << case_seed;
      return;
    }
  }
}

// ---- Simple generators ----------------------------------------------------

/// n uniform doubles in [lo, hi).
inline std::vector<double> gen_doubles(Rng& rng, std::size_t n, double lo,
                                       double hi) {
  std::vector<double> out(n);
  for (double& x : out) x = rng.uniform(lo, hi);
  return out;
}

/// n standard-normal doubles scaled by `sigma`.
inline std::vector<double> gen_gaussians(Rng& rng, std::size_t n,
                                         double sigma = 1.0) {
  std::vector<double> out(n);
  for (double& x : out) x = rng.gaussian(0.0, sigma);
  return out;
}

/// A random permutation of 0..n-1 (Fisher-Yates).
inline std::vector<std::size_t> gen_permutation(Rng& rng, std::size_t n) {
  std::vector<std::size_t> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = i;
  for (std::size_t i = n; i > 1; --i) {
    const std::size_t j =
        static_cast<std::size_t>(rng.uniform_int(0, static_cast<int>(i) - 1));
    std::swap(out[i - 1], out[j]);
  }
  return out;
}

}  // namespace mobiwlan::proptest
