// Property suite: CSI similarity (Eq. 1) invariants over random matrices.
//
// The ISSUE-level claims: similarity is symmetric, bounded (a Pearson
// correlation lies in [-1, 1] — NOT [0, 1]: anti-correlated magnitude
// profiles are legal inputs and score negative), self-similarity is 1 for
// any non-constant matrix, and constant inputs hit the documented 0 return.
#include "core/csi_similarity.hpp"

#include <cmath>

#include <gtest/gtest.h>

#include "proptest.hpp"

namespace mobiwlan {
namespace {

using proptest::run_cases;

/// A random CSI matrix with complex-Gaussian entries (Rayleigh magnitudes).
CsiMatrix random_csi(Rng& rng, std::size_t n_tx, std::size_t n_rx,
                     std::size_t n_sc) {
  CsiMatrix m(n_tx, n_rx, n_sc);
  for (auto& z : m.raw()) z = rng.complex_gaussian(rng.uniform(0.25, 4.0));
  return m;
}

/// Random antenna geometry up to 3x3, at least 8 subcarriers.
struct Dims {
  std::size_t n_tx, n_rx, n_sc;
};
Dims random_dims(Rng& rng) {
  return {static_cast<std::size_t>(rng.uniform_int(1, 3)),
          static_cast<std::size_t>(rng.uniform_int(1, 3)),
          static_cast<std::size_t>(rng.uniform_int(8, 64))};
}

TEST(SimilarityProperty, Symmetric) {
  run_cases("similarity_symmetric", [](Rng& rng, int) {
    const Dims d = random_dims(rng);
    const CsiMatrix a = random_csi(rng, d.n_tx, d.n_rx, d.n_sc);
    const CsiMatrix b = random_csi(rng, d.n_tx, d.n_rx, d.n_sc);
    // The Pearson accumulation multiplies matched deviations, so swapping
    // the arguments performs the identical arithmetic: exact equality.
    EXPECT_EQ(csi_similarity(a, b), csi_similarity(b, a));
  });
}

TEST(SimilarityProperty, BoundedByOne) {
  run_cases("similarity_bounded", [](Rng& rng, int) {
    const Dims d = random_dims(rng);
    const CsiMatrix a = random_csi(rng, d.n_tx, d.n_rx, d.n_sc);
    const CsiMatrix b = random_csi(rng, d.n_tx, d.n_rx, d.n_sc);
    const double s = csi_similarity(a, b);
    EXPECT_TRUE(std::isfinite(s));
    // |r| <= 1 up to rounding in the normalization.
    EXPECT_LE(std::abs(s), 1.0 + 1e-12);
  });
}

TEST(SimilarityProperty, SelfSimilarityIsOne) {
  run_cases("similarity_self", [](Rng& rng, int) {
    const Dims d = random_dims(rng);
    const CsiMatrix a = random_csi(rng, d.n_tx, d.n_rx, d.n_sc);
    EXPECT_NEAR(csi_similarity(a, a), 1.0, 1e-12);
  });
}

TEST(SimilarityProperty, ConstantVectorScoresZero) {
  run_cases("similarity_constant", [](Rng& rng, int) {
    const Dims d = random_dims(rng);
    // All-equal magnitudes: the documented contract is a 0 return (not NaN)
    // for numerically constant inputs. "Numerically" is load-bearing — the
    // guard is a variance epsilon, and an arbitrary constant magnitude
    // leaves ~1e-32-per-term residue from the inexact mean division that
    // can exceed it. A power-of-two magnitude makes the mean exact and the
    // variance a true 0, which is the case the contract promises.
    CsiMatrix a(d.n_tx, d.n_rx, d.n_sc);
    const double mag = std::ldexp(1.0, rng.uniform_int(-3, 3));
    for (auto& z : a.raw()) z = {mag, 0.0};
    const CsiMatrix b = random_csi(rng, d.n_tx, d.n_rx, d.n_sc);
    EXPECT_EQ(csi_similarity(a, b), 0.0);
    EXPECT_EQ(csi_similarity(a, a), 0.0);
  });
}

TEST(SimilarityProperty, ScaleInvariant) {
  run_cases("similarity_scale", [](Rng& rng, int) {
    const Dims d = random_dims(rng);
    const CsiMatrix a = random_csi(rng, d.n_tx, d.n_rx, d.n_sc);
    const CsiMatrix b = random_csi(rng, d.n_tx, d.n_rx, d.n_sc);
    // Pearson is invariant under positive scaling of either argument (an
    // AGC gain step must not look like mobility).
    CsiMatrix scaled = b;
    const double gain = rng.uniform(0.1, 10.0);
    for (auto& z : scaled.raw()) z *= gain;
    EXPECT_NEAR(csi_similarity(a, scaled), csi_similarity(a, b), 1e-9);
  });
}

}  // namespace
}  // namespace mobiwlan
