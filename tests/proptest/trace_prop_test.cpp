// Property suite for the MWTR v2 trace format: randomly generated traces
// (random stream sets, unit counts, geometries, cadences, absences) must
// survive a save -> load round trip bitwise — scalars, CSI matrices, flags,
// ordering — and TraceSource must replay every stream in recorded order.
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <vector>

#include "proptest.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_source.hpp"

namespace mobiwlan::trace {
namespace {

using proptest::run_cases;

/// Scalar kinds the generator draws from (matrix kinds handled separately).
constexpr StreamKind kScalarKinds[] = {
    StreamKind::kRssi, StreamKind::kTof, StreamKind::kSnr,
    StreamKind::kTrueDistance, StreamKind::kScanRssi, StreamKind::kFeedbackOk};

struct GeneratedTrace {
  TraceHeader header;
  std::vector<TraceRecord> records;  // in write order
};

CsiMatrix random_matrix(Rng& rng, const TraceHeader& h) {
  CsiMatrix m(h.n_tx, h.n_rx, h.n_sc);
  for (std::size_t tx = 0; tx < h.n_tx; ++tx)
    for (std::size_t rx = 0; rx < h.n_rx; ++rx)
      for (std::size_t sc = 0; sc < h.n_sc; ++sc)
        m.at(tx, rx, sc) = cplx(rng.gaussian(0.0, 1.0), rng.gaussian(0.0, 1.0));
  return m;
}

/// Draws a random header and a random record sequence that is legal under
/// it: declared streams only, units in range, per-stream non-decreasing
/// timestamps (shared clock with occasional duplicates), ~15% absences.
GeneratedTrace generate(Rng& rng) {
  GeneratedTrace g;
  g.header.n_units = static_cast<std::uint32_t>(rng.uniform_int(1, 4));
  g.header.n_tx = static_cast<std::uint32_t>(rng.uniform_int(1, 3));
  g.header.n_rx = static_cast<std::uint32_t>(rng.uniform_int(1, 2));
  g.header.n_sc = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
  g.header.carrier_hz = rng.uniform(2.4e9, 6.0e9);

  std::vector<StreamKind> kinds;
  for (const StreamKind k : kScalarKinds)
    if (rng.uniform(0.0, 1.0) < 0.5) kinds.push_back(k);
  if (rng.uniform(0.0, 1.0) < 0.5) kinds.push_back(StreamKind::kCsi);
  if (kinds.empty()) kinds.push_back(StreamKind::kRssi);
  for (const StreamKind k : kinds) g.header.stream_mask |= stream_bit(k);

  const int n = rng.uniform_int(1, 60);
  double t = 0.0;
  for (int i = 0; i < n; ++i) {
    if (rng.uniform(0.0, 1.0) < 0.8) t += rng.uniform(0.0, 0.05);
    TraceRecord rec;
    rec.kind = kinds[static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<int>(kinds.size()) - 1))];
    rec.unit = static_cast<std::uint32_t>(
        rng.uniform_int(0, static_cast<int>(g.header.n_units) - 1));
    rec.t = t;
    rec.present = rng.uniform(0.0, 1.0) >= 0.15;
    if (rec.present) {
      if (is_matrix_kind(rec.kind))
        rec.csi = random_matrix(rng, g.header);
      else
        rec.scalar = rng.gaussian(0.0, 100.0);
    }
    g.records.push_back(std::move(rec));
  }
  return g;
}

void write_trace(const std::string& path, const GeneratedTrace& g) {
  TraceWriter writer(path, g.header);
  for (const TraceRecord& rec : g.records) {
    if (!rec.present)
      writer.put_absent(rec.kind, rec.unit, rec.t);
    else if (is_matrix_kind(rec.kind))
      writer.put_csi(rec.kind, rec.unit, rec.t, rec.csi);
    else
      writer.put_scalar(rec.kind, rec.unit, rec.t, rec.scalar);
  }
  writer.close();
}

std::string case_path(int index) {
  return ::testing::TempDir() + "/trace_prop_" + std::to_string(index) +
         ".mwtr";
}

TEST(TraceProp, SaveLoadRoundTripsBitwise) {
  run_cases("trace save/load round trip", [](Rng& rng, int index) {
    const GeneratedTrace g = generate(rng);
    const std::string path = case_path(index);
    write_trace(path, g);

    TraceReader reader(path);
    EXPECT_EQ(reader.header().stream_mask, g.header.stream_mask);
    EXPECT_EQ(reader.header().n_units, g.header.n_units);
    EXPECT_EQ(reader.header().n_tx, g.header.n_tx);
    EXPECT_EQ(reader.header().n_rx, g.header.n_rx);
    EXPECT_EQ(reader.header().n_sc, g.header.n_sc);
    // Bitwise: the header carrier is a raw f64 round trip.
    EXPECT_EQ(reader.header().carrier_hz, g.header.carrier_hz);

    TraceRecord rec;
    for (std::size_t i = 0; i < g.records.size(); ++i) {
      ASSERT_TRUE(reader.next(rec)) << "record " << i << " missing";
      const TraceRecord& want = g.records[i];
      EXPECT_EQ(rec.kind, want.kind);
      EXPECT_EQ(rec.unit, want.unit);
      EXPECT_EQ(rec.t, want.t);  // bitwise, not approximate
      EXPECT_EQ(rec.present, want.present);
      if (!want.present) continue;
      if (is_matrix_kind(want.kind)) {
        ASSERT_EQ(rec.csi.n_tx(), want.csi.n_tx());
        ASSERT_EQ(rec.csi.n_rx(), want.csi.n_rx());
        ASSERT_EQ(rec.csi.n_subcarriers(), want.csi.n_subcarriers());
        for (std::size_t v = 0; v < rec.csi.raw().size(); ++v)
          EXPECT_EQ(rec.csi.raw()[v], want.csi.raw()[v]);
      } else {
        EXPECT_EQ(rec.scalar, want.scalar);
      }
    }
    EXPECT_FALSE(reader.next(rec)) << "trailing records";
    std::remove(path.c_str());
  });
}

TEST(TraceProp, TraceSourceReplaysEveryStreamInOrder) {
  run_cases("trace source in-order replay", [](Rng& rng, int index) {
    const GeneratedTrace g = generate(rng);
    const std::string path = case_path(index);
    write_trace(path, g);

    // Querying each stream at exactly its recorded times must reproduce the
    // full log: present records by value, absences as nullopt/false.
    TraceSource src(path);  // strict
    CsiMatrix csi;
    for (const TraceRecord& want : g.records) {
      if (is_matrix_kind(want.kind)) {
        const bool got = src.csi(want.unit, want.t, csi);
        EXPECT_EQ(got, want.present);
        if (got)
          for (std::size_t v = 0; v < csi.raw().size(); ++v)
            EXPECT_EQ(csi.raw()[v], want.csi.raw()[v]);
      } else {
        std::optional<double> got;
        switch (want.kind) {
          case StreamKind::kRssi: got = src.rssi_dbm(want.unit, want.t); break;
          case StreamKind::kTof: got = src.tof_cycles(want.unit, want.t); break;
          case StreamKind::kSnr: got = src.snr_db(want.unit, want.t); break;
          case StreamKind::kTrueDistance:
            got = src.true_distance(want.unit, want.t);
            break;
          case StreamKind::kScanRssi:
            got = src.scan_rssi_dbm(want.unit, want.t);
            break;
          case StreamKind::kFeedbackOk:
            // feedback_delivered collapses the scalar to a bool; absences
            // default to "delivered".
            EXPECT_EQ(src.feedback_delivered(want.unit, want.t),
                      !want.present || want.scalar != 0.0);
            continue;
          default: FAIL() << "unexpected kind"; continue;
        }
        EXPECT_EQ(got.has_value(), want.present);
        if (got) EXPECT_EQ(*got, want.scalar);
      }
    }
    const auto& c = src.counters();
    EXPECT_EQ(c.held, 0u);
    EXPECT_EQ(c.missing, 0u);
    EXPECT_EQ(c.skipped, 0u);
    std::remove(path.c_str());
  });
}

}  // namespace
}  // namespace mobiwlan::trace
