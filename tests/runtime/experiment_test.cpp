// Tests for the deterministic experiment runner: the same master seed must
// produce bit-identical aggregated results at 1, 2, and 8 workers, stream
// ids must be counter-based, and job failures must propagate.
#include "runtime/experiment.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <stdexcept>
#include <vector>

#include "runtime/report.hpp"
#include "runtime/thread_pool.hpp"
#include "util/rng.hpp"

namespace mobiwlan::runtime {
namespace {

/// A stand-in for a simulation trial: result depends on the trial's rng and
/// index, with enough draws that any cross-trial state sharing would show.
double fake_trial(Trial& t) {
  double acc = static_cast<double>(t.index) * 1e-3;
  for (int i = 0; i < 1000; ++i) acc += t.rng.uniform();
  return acc + t.rng.gaussian();
}

std::vector<double> run_with_workers(std::size_t workers,
                                     std::uint64_t seed = kMasterSeed) {
  ThreadPool pool(workers);
  Experiment exp(pool, seed);
  return exp.map<double>(40, fake_trial);
}

TEST(ExperimentTest, BitIdenticalAcrossWorkerCounts) {
  const std::vector<double> serial = run_with_workers(1);
  const std::vector<double> two = run_with_workers(2);
  const std::vector<double> eight = run_with_workers(8);
  ASSERT_EQ(serial.size(), two.size());
  ASSERT_EQ(serial.size(), eight.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    // EXPECT_EQ on doubles: bit-identical, not approximately equal.
    EXPECT_EQ(serial[i], two[i]) << "trial " << i;
    EXPECT_EQ(serial[i], eight[i]) << "trial " << i;
  }
}

TEST(ExperimentTest, DifferentSeedsDifferentResults) {
  const std::vector<double> a = run_with_workers(2, 1);
  const std::vector<double> b = run_with_workers(2, 2);
  EXPECT_NE(a, b);
}

TEST(ExperimentTest, TrialRngMatchesCounterBasedDerivation) {
  ThreadPool pool(4);
  Experiment exp(pool, 987654321);
  const auto firsts = exp.map<std::uint64_t>(
      16, [](Trial& t) { return t.rng.next_u64(); });
  // Each trial's generator must be master.stream(stream_id) with stream ids
  // assigned 0..n-1 in submission order, independent of execution order.
  const Rng master(987654321);
  for (std::size_t i = 0; i < firsts.size(); ++i)
    EXPECT_EQ(firsts[i], master.stream(i).next_u64()) << "trial " << i;
}

TEST(ExperimentTest, StreamIdsContinueAcrossMapCalls) {
  ThreadPool pool(2);
  Experiment exp(pool, 5);
  const auto first = exp.map<std::uint64_t>(10, [](Trial& t) { return t.stream; });
  const auto second = exp.map<std::uint64_t>(5, [](Trial& t) { return t.stream; });
  for (std::size_t i = 0; i < first.size(); ++i) EXPECT_EQ(first[i], i);
  for (std::size_t i = 0; i < second.size(); ++i) EXPECT_EQ(second[i], 10 + i);
  EXPECT_EQ(exp.next_stream(), 15u);
}

TEST(ExperimentTest, ReserveSeedsConsumesStreamIdsAndIsDeterministic) {
  ThreadPool pool(2);
  Experiment exp_a(pool, 77);
  Experiment exp_b(pool, 77);
  const auto seeds_a = exp_a.reserve_seeds(6);
  const auto seeds_b = exp_b.reserve_seeds(6);
  EXPECT_EQ(seeds_a, seeds_b);
  EXPECT_EQ(exp_a.next_stream(), 6u);
  // Reserved ids must match what trials would have been seeded with.
  const Rng master(77);
  for (std::size_t i = 0; i < seeds_a.size(); ++i)
    EXPECT_EQ(seeds_a[i], master.stream(i).seed());
}

TEST(ExperimentTest, ExceptionFromTrialPropagates) {
  ThreadPool pool(4);
  Experiment exp(pool, 1);
  EXPECT_THROW(exp.map<int>(20,
                            [](Trial& t) -> int {
                              if (t.index == 13)
                                throw std::runtime_error("bad trial");
                              return 0;
                            }),
               std::runtime_error);
  // The experiment (and pool) stay usable afterwards.
  const auto ok = exp.map<int>(4, [](Trial&) { return 1; });
  EXPECT_EQ(ok.size(), 4u);
}

TEST(ExperimentTest, ReportCollectsOrderedJobTimings) {
  ThreadPool pool(3);
  BenchReport report;
  Experiment exp(pool, kMasterSeed, &report);
  (void)exp.map<double>(25, fake_trial);
  EXPECT_EQ(report.workers, 3u);
  ASSERT_EQ(report.jobs.size(), 25u);
  for (std::size_t i = 0; i < report.jobs.size(); ++i) {
    EXPECT_EQ(report.jobs[i].job_id, i);
    EXPECT_EQ(report.jobs[i].stream, i);
    EXPECT_GE(report.jobs[i].run_s, 0.0);
    EXPECT_GE(report.jobs[i].queue_wait_s, 0.0);
    EXPECT_GE(report.jobs[i].worker, 0);
    EXPECT_LT(report.jobs[i].worker, 3);
  }
  EXPECT_GT(report.total_cpu_s(), 0.0);
}

TEST(ExperimentTest, JsonReportIsDeterministicModuloTimingLines) {
  auto make_json = [](std::size_t workers) {
    ThreadPool pool(workers);
    RunReport run;
    run.master_seed = 99;
    run.workers = pool.size();
    BenchReport bench;
    bench.name = "demo";
    Experiment exp(pool, 99, &bench);
    const auto vals = exp.map<double>(12, fake_trial);
    for (std::size_t i = 0; i < vals.size(); ++i)
      bench.add_metric("trial_" + std::to_string(i), vals[i]);
    bench.text = "demo text\n";
    run.benches.push_back(std::move(bench));
    return run.to_json();
  };
  auto strip_timing = [](const std::string& json) {
    std::string out;
    std::size_t pos = 0;
    while (pos < json.size()) {
      const std::size_t eol = json.find('\n', pos);
      const std::string line = json.substr(pos, eol - pos);
      if (line.find("\"timing\":") == std::string::npos) out += line + "\n";
      pos = eol == std::string::npos ? json.size() : eol + 1;
    }
    return out;
  };
  const std::string one = make_json(1);
  const std::string eight = make_json(8);
  EXPECT_NE(one, eight);  // timing genuinely differs...
  EXPECT_EQ(strip_timing(one), strip_timing(eight));  // ...results do not
}

}  // namespace
}  // namespace mobiwlan::runtime
