// parallel_for_test — the chunked sharding primitive and its contracts.
//
// parallel_for's chunk->range mapping is a pure function of (count, grain):
// the pool size only decides who executes a chunk, never what the chunk is.
// That is what Experiment::shard builds its jobs-independent substream
// assignment on, so the tests here pin down coverage, slot bounds,
// exception propagation, pool reusability after a throw, and bit-identical
// shard results across worker counts.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "runtime/experiment.hpp"
#include "runtime/thread_pool.hpp"

namespace mobiwlan::runtime {
namespace {

TEST(ParallelFor, CoversEveryIndexExactlyOnce) {
  for (const std::size_t workers : {1u, 4u}) {
    ThreadPool pool(workers);
    constexpr std::size_t kCount = 1013;  // prime: uneven tail chunk
    std::vector<std::atomic<int>> hits(kCount);
    pool.parallel_for(kCount, 17,
                      [&](std::size_t, std::size_t begin, std::size_t end) {
                        for (std::size_t i = begin; i < end; ++i)
                          hits[i].fetch_add(1, std::memory_order_relaxed);
                      });
    for (std::size_t i = 0; i < kCount; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "index " << i << " with " << workers
                                   << " workers";
  }
}

TEST(ParallelFor, SlotsStayWithinPoolBounds) {
  ThreadPool pool(4);
  std::atomic<std::size_t> max_slot{0};
  pool.parallel_for(512, 8,
                    [&](std::size_t slot, std::size_t, std::size_t) {
                      std::size_t seen = max_slot.load();
                      while (slot > seen &&
                             !max_slot.compare_exchange_weak(seen, slot)) {
                      }
                    });
  // Slot 0 is the calling thread; helpers occupy 1..pool.size().
  EXPECT_LE(max_slot.load(), pool.size());
}

TEST(ParallelFor, GrainLargerThanCountRunsOneChunk) {
  ThreadPool pool(2);
  std::atomic<int> chunks{0};
  pool.parallel_for(5, 100,
                    [&](std::size_t slot, std::size_t begin, std::size_t end) {
                      chunks.fetch_add(1);
                      EXPECT_EQ(slot, 0u);  // no helper needed for one chunk
                      EXPECT_EQ(begin, 0u);
                      EXPECT_EQ(end, 5u);
                    });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ParallelFor, ZeroCountIsANoOp) {
  ThreadPool pool(2);
  pool.parallel_for(0, 8, [&](std::size_t, std::size_t, std::size_t) {
    FAIL() << "body must not run for count == 0";
  });
}

TEST(ParallelFor, PropagatesFirstExceptionAndPoolSurvives) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallel_for(256, 8,
                        [&](std::size_t, std::size_t begin, std::size_t) {
                          if (begin == 64) throw std::runtime_error("boom");
                        }),
      std::runtime_error);

  // Every queued helper drained and the pool is intact: a follow-up run
  // still covers everything.
  std::atomic<int> total{0};
  pool.parallel_for(256, 8, [&](std::size_t, std::size_t begin,
                                std::size_t end) {
    total.fetch_add(static_cast<int>(end - begin));
  });
  EXPECT_EQ(total.load(), 256);
}

/// shard() must produce bit-identical per-index values on any pool size:
/// the RNG substream is keyed by chunk ordinal (begin / grain), not by the
/// executing worker.
std::vector<double> shard_trace(std::size_t workers) {
  ThreadPool pool(workers);
  Experiment exp(pool, 20140204);
  constexpr std::size_t kCount = 512;
  constexpr std::size_t kGrain = 32;
  std::vector<double> out(kCount);
  exp.shard(kCount, kGrain,
            [&](std::size_t begin, std::size_t end, Rng& rng) {
              for (std::size_t i = begin; i < end; ++i)
                out[i] = static_cast<double>(i) + rng.uniform();
            });
  return out;
}

TEST(ExperimentShard, BitIdenticalAcrossPoolSizes) {
  const std::vector<double> one = shard_trace(1);
  const std::vector<double> four = shard_trace(4);
  ASSERT_EQ(one.size(), four.size());
  for (std::size_t i = 0; i < one.size(); ++i)
    ASSERT_EQ(one[i], four[i]) << "index " << i;
}

TEST(ExperimentShard, ConsecutiveShardsUseFreshStreams) {
  ThreadPool pool(2);
  Experiment exp(pool, 20140204);
  std::vector<double> a(64), b(64);
  const auto fill = [](std::vector<double>& v) {
    return [&v](std::size_t begin, std::size_t end, Rng& rng) {
      for (std::size_t i = begin; i < end; ++i) v[i] = rng.uniform();
    };
  };
  exp.shard(64, 16, fill(a));
  exp.shard(64, 16, fill(b));
  // Same geometry, later stream ids: the draws must not repeat.
  int same = 0;
  for (std::size_t i = 0; i < 64; ++i) same += a[i] == b[i];
  EXPECT_EQ(same, 0);
}

}  // namespace
}  // namespace mobiwlan::runtime
