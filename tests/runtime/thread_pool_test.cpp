// Tests for the runtime thread pool: every queued task runs, exceptions
// surface through submit() futures, and the destructor drains and joins.
#include "runtime/thread_pool.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

namespace mobiwlan::runtime {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 200; ++i)
    futures.push_back(pool.submit([&count] { ++count; }));
  for (auto& f : futures) f.get();
  EXPECT_EQ(count.load(), 200);
}

TEST(ThreadPoolTest, SubmitReturnsValue) {
  ThreadPool pool(2);
  auto f = pool.submit([] { return 6 * 7; });
  EXPECT_EQ(f.get(), 42);
}

TEST(ThreadPoolTest, ExceptionsPropagateThroughFutures) {
  ThreadPool pool(2);
  auto f = pool.submit(
      []() -> int { throw std::runtime_error("trial exploded"); });
  EXPECT_THROW(f.get(), std::runtime_error);
  // The pool stays usable after a task threw.
  EXPECT_EQ(pool.submit([] { return 1; }).get(), 1);
}

TEST(ThreadPoolTest, DestructorDrainsQueueAndJoins) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i)
      pool.post([&count] {
        std::this_thread::sleep_for(std::chrono::microseconds(100));
        ++count;
      });
    // Destructor runs here: it must wait for all 100, not drop the queue.
  }
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, CurrentWorkerIndexIsValidInsideTasksOnly) {
  EXPECT_EQ(ThreadPool::current_worker(), -1);
  ThreadPool pool(3);
  std::mutex mu;
  std::set<int> seen;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 64; ++i)
    futures.push_back(pool.submit([&] {
      const int w = ThreadPool::current_worker();
      ASSERT_GE(w, 0);
      ASSERT_LT(w, 3);
      std::lock_guard<std::mutex> lock(mu);
      seen.insert(w);
    }));
  for (auto& f : futures) f.get();
  EXPECT_GE(seen.size(), 1u);
}

TEST(ThreadPoolTest, ZeroThreadsClampedToOne) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

}  // namespace
}  // namespace mobiwlan::runtime
