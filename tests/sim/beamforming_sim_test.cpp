// Tests for the SU beamforming and MU-MIMO emulators (§6).
#include "sim/beamforming_sim.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

BeamformingSimConfig short_config() {
  BeamformingSimConfig cfg;
  cfg.duration_s = 5.0;
  return cfg;
}

ScenarioOptions single_antenna_options() {
  ScenarioOptions opt;
  opt.channel.n_rx = 1;
  return opt;
}

TEST(SuBeamformingSimTest, ProducesThroughputAndGain) {
  Rng rng(1);
  Scenario s = make_scenario(MobilityClass::kStatic, rng);
  Rng sim_rng(2);
  const auto r = simulate_su_beamforming(s, short_config(), sim_rng);
  EXPECT_GT(r.throughput_mbps, 5.0);
  EXPECT_GT(r.mean_gain_db, 2.0);  // static client: near-full array gain
  EXPECT_GE(r.overhead_fraction, 0.0);
  EXPECT_LT(r.overhead_fraction, 0.5);
}

TEST(SuBeamformingSimTest, ShortPeriodMoreOverhead) {
  Rng rng1(3);
  Rng rng2(3);
  Scenario a = make_scenario(MobilityClass::kStatic, rng1);
  Scenario b = make_scenario(MobilityClass::kStatic, rng2);
  BeamformingSimConfig fast = short_config();
  fast.fixed_period_s = 2e-3;
  BeamformingSimConfig slow = short_config();
  slow.fixed_period_s = 50e-3;
  Rng r1(4);
  Rng r2(4);
  const auto fast_result = simulate_su_beamforming(a, fast, r1);
  const auto slow_result = simulate_su_beamforming(b, slow, r2);
  EXPECT_GT(fast_result.overhead_fraction, slow_result.overhead_fraction * 5.0);
}

TEST(SuBeamformingSimTest, StaticClientPrefersLongPeriod) {
  // Fig. 11(a) left edge: frequent feedback only adds overhead.
  auto run = [](double period) {
    double total = 0.0;
    for (int i = 0; i < 3; ++i) {
      Rng rng(10 + i);
      Scenario s = make_scenario(MobilityClass::kStatic, rng);
      BeamformingSimConfig cfg;
      cfg.duration_s = 5.0;
      cfg.fixed_period_s = period;
      Rng sim_rng(20 + i);
      total += simulate_su_beamforming(s, cfg, sim_rng).throughput_mbps;
    }
    return total;
  };
  EXPECT_GT(run(200e-3), run(2e-3));
}

TEST(SuBeamformingSimTest, MacroClientGainDecaysWithPeriod) {
  auto mean_gain = [](double period) {
    double total = 0.0;
    for (int i = 0; i < 3; ++i) {
      Rng rng(30 + i);
      Scenario s = make_scenario(MobilityClass::kMacro, rng);
      BeamformingSimConfig cfg;
      cfg.duration_s = 5.0;
      cfg.fixed_period_s = period;
      Rng sim_rng(40 + i);
      total += simulate_su_beamforming(s, cfg, sim_rng).mean_gain_db;
    }
    return total / 3.0;
  };
  EXPECT_GT(mean_gain(2e-3), mean_gain(200e-3) + 1.0);
}

TEST(SuBeamformingSimTest, AdaptivePeriodRuns) {
  Rng rng(5);
  Scenario s = make_scenario(MobilityClass::kMacro, rng);
  BeamformingSimConfig cfg = short_config();
  cfg.adaptive_period = true;
  Rng sim_rng(6);
  EXPECT_GT(simulate_su_beamforming(s, cfg, sim_rng).throughput_mbps, 1.0);
}

TEST(MuMimoSimTest, ServesThreeClients) {
  Rng rng(7);
  const auto opt = single_antenna_options();
  Scenario a = make_scenario(MobilityClass::kEnvironmental, rng, opt);
  Scenario b = make_scenario(MobilityClass::kMicro, rng, opt);
  Scenario c = make_scenario(MobilityClass::kMacro, rng, opt);
  Rng sim_rng(8);
  const auto r = simulate_mu_mimo({&a, &b, &c}, short_config(), sim_rng);
  ASSERT_EQ(r.per_client_mbps.size(), 3u);
  for (double mbps : r.per_client_mbps) EXPECT_GT(mbps, 0.5);
  EXPECT_NEAR(r.total_mbps,
              r.per_client_mbps[0] + r.per_client_mbps[1] + r.per_client_mbps[2],
              1e-9);
}

TEST(MuMimoSimTest, StaleFeedbackHurtsMobileClientMost) {
  // Fig. 12(a): with a long fixed period, the macro client's share collapses
  // relative to a short period, while static clients barely move.
  auto run = [&](double period) {
    Rng rng(9);
    const auto opt = single_antenna_options();
    Scenario a = make_scenario(MobilityClass::kStatic, rng, opt);
    Scenario b = make_scenario(MobilityClass::kStatic, rng, opt);
    Scenario c = make_scenario(MobilityClass::kMacro, rng, opt);
    BeamformingSimConfig cfg;
    cfg.duration_s = 5.0;
    cfg.fixed_period_s = period;
    Rng sim_rng(10);
    return simulate_mu_mimo({&a, &b, &c}, cfg, sim_rng);
  };
  const auto fast = run(5e-3);
  const auto slow = run(100e-3);
  const double macro_ratio = slow.per_client_mbps[2] /
                             std::max(fast.per_client_mbps[2], 1e-9);
  EXPECT_LT(macro_ratio, 0.85);
}

TEST(MuMimoSimTest, AdaptivePeriodRuns) {
  Rng rng(11);
  const auto opt = single_antenna_options();
  Scenario a = make_scenario(MobilityClass::kEnvironmental, rng, opt);
  Scenario b = make_scenario(MobilityClass::kMicro, rng, opt);
  Scenario c = make_scenario(MobilityClass::kMacro, rng, opt);
  BeamformingSimConfig cfg = short_config();
  cfg.adaptive_period = true;
  Rng sim_rng(12);
  const auto r = simulate_mu_mimo({&a, &b, &c}, cfg, sim_rng);
  EXPECT_GT(r.total_mbps, 1.0);
}

TEST(MuMimoTraceTest, TraceReplayMatchesLiveShape) {
  // The §6.2 record-then-replay path: record each client's channel at the
  // slot cadence, then run the emulator purely from the traces.
  Rng rng(20);
  const auto opt = single_antenna_options();
  Scenario a = make_scenario(MobilityClass::kStatic, rng, opt);
  Scenario b = make_scenario(MobilityClass::kMacro, rng, opt);
  BeamformingSimConfig cfg = short_config();

  const CsiTrace ta = CsiTrace::record(*a.channel, cfg.duration_s, cfg.slot_s);
  const CsiTrace tb = CsiTrace::record(*b.channel, cfg.duration_s, cfg.slot_s);

  const auto r = simulate_mu_mimo_traces({&ta, &tb}, cfg);
  ASSERT_EQ(r.per_client_mbps.size(), 2u);
  for (double mbps : r.per_client_mbps) EXPECT_GT(mbps, 0.5);
}

TEST(MuMimoTraceTest, StalePeriodHurtsMobileClientInReplay) {
  Rng rng(21);
  const auto opt = single_antenna_options();
  Scenario a = make_scenario(MobilityClass::kStatic, rng, opt);
  Scenario b = make_scenario(MobilityClass::kMacro, rng, opt);
  const CsiTrace ta = CsiTrace::record(*a.channel, 5.0, 2e-3);
  const CsiTrace tb = CsiTrace::record(*b.channel, 5.0, 2e-3);

  auto run = [&](double period) {
    BeamformingSimConfig cfg = short_config();
    cfg.fixed_period_s = period;
    return simulate_mu_mimo_traces({&ta, &tb}, cfg);
  };
  const auto fast = run(5e-3);
  const auto slow = run(100e-3);
  EXPECT_LT(slow.per_client_mbps[1], fast.per_client_mbps[1]);
}

TEST(MuMimoTraceTest, EmptyClientListSafe) {
  BeamformingSimConfig cfg = short_config();
  const auto r = simulate_mu_mimo_traces({}, cfg);
  EXPECT_TRUE(r.per_client_mbps.empty());
  EXPECT_DOUBLE_EQ(r.total_mbps, 0.0);
}

TEST(MuMimoTraceTest, AdaptivePeriodFromTraceClassifier) {
  Rng rng(22);
  const auto opt = single_antenna_options();
  Scenario a = make_scenario(MobilityClass::kStatic, rng, opt);
  Scenario b = make_scenario(MobilityClass::kMacro, rng, opt);
  const CsiTrace ta = CsiTrace::record(*a.channel, 5.0, 2e-3);
  const CsiTrace tb = CsiTrace::record(*b.channel, 5.0, 2e-3);
  BeamformingSimConfig cfg = short_config();
  cfg.adaptive_period = true;
  const auto r = simulate_mu_mimo_traces({&ta, &tb}, cfg);
  EXPECT_GT(r.total_mbps, 1.0);
}

}  // namespace
}  // namespace mobiwlan
