// Tests for the shared classification-evaluation harness, including the
// AoA-augmented orbit path.
#include "sim/evaluation.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

EvaluationOptions quick_options() {
  EvaluationOptions opt;
  opt.trials = 3;
  opt.duration_s = 25.0;
  return opt;
}

TEST(EvaluationTest, TallyCountsAreConsistent) {
  Rng rng(1);
  const ClassTally tally =
      evaluate_class(MobilityClass::kStatic, rng, quick_options());
  EXPECT_GT(tally.total, 0);
  int class_sum = 0;
  for (const auto& [cls, n] : tally.by_class) class_sum += n;
  EXPECT_EQ(class_sum, tally.total);
  int mode_sum = 0;
  for (const auto& [mode, n] : tally.by_mode) mode_sum += n;
  EXPECT_EQ(mode_sum, tally.total);
}

TEST(EvaluationTest, StaticAccuracyHigh) {
  Rng rng(2);
  const ClassTally tally =
      evaluate_class(MobilityClass::kStatic, rng, quick_options());
  EXPECT_GT(tally.accuracy(MobilityClass::kStatic), 0.8);
}

TEST(EvaluationTest, ConfusionMatrixHasAllRows) {
  Rng rng(3);
  const ConfusionMatrix m = evaluate_all(rng, quick_options());
  EXPECT_EQ(m.rows.size(), 4u);
  EXPECT_GT(m.mean_accuracy(), 0.6);
}

TEST(EvaluationTest, EmptyTallySafe) {
  ClassTally tally;
  EXPECT_DOUBLE_EQ(tally.accuracy(MobilityClass::kMacro), 0.0);
  EXPECT_DOUBLE_EQ(tally.fraction(MobilityMode::kMicro), 0.0);
  ConfusionMatrix m;
  EXPECT_DOUBLE_EQ(m.mean_accuracy(), 0.0);
  EXPECT_DOUBLE_EQ(m.accuracy(MobilityClass::kStatic), 0.0);
}

TEST(EvaluationTest, OrbitMisclassifiedWithoutAoa) {
  Rng rng(4);
  const auto [macro_frac, micro_frac] = evaluate_orbit(rng, quick_options());
  EXPECT_LT(macro_frac, 0.1);
  EXPECT_GT(micro_frac, 0.8);
}

TEST(EvaluationTest, OrbitRecoveredWithAoa) {
  EvaluationOptions opt = quick_options();
  opt.trials = 4;
  opt.duration_s = 35.0;
  opt.classifier.use_aoa = true;
  Rng rng(5);
  const auto [macro_frac, micro_frac] = evaluate_orbit(rng, opt);
  EXPECT_GT(macro_frac, 0.5);
  EXPECT_LT(micro_frac, 0.5);
}

TEST(EvaluationTest, AoaDoesNotDisturbStatic) {
  EvaluationOptions opt = quick_options();
  opt.classifier.use_aoa = true;
  Rng rng(6);
  const ClassTally tally = evaluate_class(MobilityClass::kStatic, rng, opt);
  EXPECT_GT(tally.accuracy(MobilityClass::kStatic), 0.8);
  EXPECT_DOUBLE_EQ(tally.fraction(MobilityMode::kMacroOrbit), 0.0);
}

TEST(EvaluationTest, DeterministicGivenSeed) {
  auto run = [] {
    Rng rng(7);
    return evaluate_class(MobilityClass::kMicro, rng, quick_options())
        .accuracy(MobilityClass::kMicro);
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(EvaluationTest, RadialWalksClassifiedWithHeading) {
  // drive_classifier is usable directly for controlled experiments.
  Rng rng(8);
  const Scenario s = make_radial_scenario(false, 8.0, rng);
  EvaluationOptions opt = quick_options();
  opt.duration_s = 18.0;
  opt.warmup_s = 8.0;
  int away = 0;
  int total = 0;
  drive_classifier(s, opt, [&](double, MobilityMode mode) {
    ++total;
    if (mode == MobilityMode::kMacroAway) ++away;
  });
  ASSERT_GT(total, 0);
  EXPECT_GT(static_cast<double>(away) / total, 0.6);
}

}  // namespace
}  // namespace mobiwlan
