// Tests for the discrete-event scheduler.
#include "sim/event_queue.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(2.0, [&](double) { order.push_back(2); });
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(3.0, [&](double) { order.push_back(3); });
  q.run_until(10.0);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, TiesFireInScheduleOrder) {
  EventQueue q;
  std::vector<int> order;
  q.schedule(1.0, [&](double) { order.push_back(1); });
  q.schedule(1.0, [&](double) { order.push_back(2); });
  q.schedule(1.0, [&](double) { order.push_back(3); });
  q.run_all();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, RunUntilStopsAtDeadline) {
  EventQueue q;
  int fired = 0;
  q.schedule(1.0, [&](double) { ++fired; });
  q.schedule(5.0, [&](double) { ++fired; });
  q.run_until(3.0);
  EXPECT_EQ(fired, 1);
  EXPECT_DOUBLE_EQ(q.now(), 3.0);
  q.run_until(10.0);
  EXPECT_EQ(fired, 2);
}

TEST(EventQueueTest, HandlerReceivesEventTime) {
  EventQueue q;
  double seen = -1.0;
  q.schedule(4.5, [&](double t) { seen = t; });
  q.run_until(10.0);
  EXPECT_DOUBLE_EQ(seen, 4.5);
}

TEST(EventQueueTest, RecurringEventRepeats) {
  EventQueue q;
  int count = 0;
  q.schedule_every(1.0, 2.0, [&](double) { ++count; });
  q.run_until(9.0);  // fires at 1,3,5,7,9
  EXPECT_EQ(count, 5);
}

TEST(EventQueueTest, CancelOneShot) {
  EventQueue q;
  int fired = 0;
  const auto id = q.schedule(1.0, [&](double) { ++fired; });
  q.cancel(id);
  q.run_until(5.0);
  EXPECT_EQ(fired, 0);
}

TEST(EventQueueTest, CancelRecurringMidStream) {
  EventQueue q;
  int count = 0;
  std::uint64_t id = 0;
  id = q.schedule_every(1.0, 1.0, [&](double t) {
    ++count;
    if (t >= 3.0) q.cancel(id);
  });
  q.run_until(10.0);
  EXPECT_EQ(count, 3);
}

TEST(EventQueueTest, CancelUnknownIdSafe) {
  EventQueue q;
  EXPECT_NO_THROW(q.cancel(9999));
}

TEST(EventQueueTest, EventsScheduledFromHandlersRun) {
  EventQueue q;
  std::vector<double> times;
  q.schedule(1.0, [&](double t) {
    times.push_back(t);
    q.schedule(t + 0.5, [&](double t2) { times.push_back(t2); });
  });
  q.run_until(2.0);
  ASSERT_EQ(times.size(), 2u);
  EXPECT_DOUBLE_EQ(times[1], 1.5);
}

TEST(EventQueueTest, PastEventsClampToNow) {
  EventQueue q;
  q.run_until(5.0);
  double seen = -1.0;
  q.schedule(1.0, [&](double t) { seen = t; });  // in the past
  q.run_until(6.0);
  EXPECT_DOUBLE_EQ(seen, 5.0);
}

TEST(EventQueueTest, EmptyAndPending) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  q.schedule(1.0, [](double) {});
  EXPECT_EQ(q.pending(), 1u);
  q.run_all();
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace mobiwlan
