// Tests for the end-to-end system simulation (§7).
#include "sim/overall_sim.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

WlanDeployment walking_deployment(std::uint64_t seed) {
  Rng rng(seed);
  auto traj = WlanDeployment::corridor_walk(rng);
  return WlanDeployment(WlanDeployment::corridor_layout(), traj, ChannelConfig{},
                        rng);
}

OverallSimConfig short_config(bool aware) {
  OverallSimConfig cfg;
  cfg.duration_s = 20.0;
  cfg.mobility_aware = aware;
  return cfg;
}

TEST(OverallSimTest, BothStacksProduceTraffic) {
  for (bool aware : {false, true}) {
    WlanDeployment wlan = walking_deployment(1);
    Rng rng(2);
    const auto r = simulate_overall(wlan, short_config(aware), rng);
    EXPECT_GT(r.throughput_mbps, 5.0) << "aware=" << aware;
    EXPECT_FALSE(r.associations.empty());
  }
}

TEST(OverallSimTest, DeterministicWithSameSeeds) {
  auto run = [] {
    WlanDeployment wlan = walking_deployment(3);
    Rng rng(4);
    return simulate_overall(wlan, short_config(true), rng).throughput_mbps;
  };
  EXPECT_DOUBLE_EQ(run(), run());
}

TEST(OverallSimTest, OutageAccountedPerHandoff) {
  WlanDeployment wlan = walking_deployment(5);
  OverallSimConfig cfg = short_config(true);
  cfg.duration_s = 45.0;
  Rng rng(6);
  const auto r = simulate_overall(wlan, cfg, rng);
  EXPECT_NEAR(r.outage_s, r.handoffs * cfg.handoff_outage_s, 1e-9);
}

TEST(OverallSimTest, MobilityAwareStackWinsOnAverage) {
  // The paper's headline (§7): the combined mobility-aware stack beats the
  // default stack on walking workloads.
  double aware_total = 0.0;
  double default_total = 0.0;
  for (int i = 0; i < 4; ++i) {
    for (bool aware : {false, true}) {
      WlanDeployment wlan = walking_deployment(100 + i);
      OverallSimConfig cfg = short_config(aware);
      cfg.duration_s = 30.0;
      Rng rng(200 + i);
      const double tput = simulate_overall(wlan, cfg, rng).throughput_mbps;
      (aware ? aware_total : default_total) += tput;
    }
  }
  EXPECT_GT(aware_total, default_total * 1.05);
}

TEST(OverallSimTest, AssociationsChangeAlongTheWalk) {
  WlanDeployment wlan = walking_deployment(7);
  OverallSimConfig cfg = short_config(true);
  cfg.duration_s = 60.0;
  Rng rng(8);
  const auto r = simulate_overall(wlan, cfg, rng);
  EXPECT_GE(r.associations.size(), 1u);
  for (std::size_t i = 1; i < r.associations.size(); ++i)
    EXPECT_GE(r.associations[i].first, r.associations[i - 1].first);
}

}  // namespace
}  // namespace mobiwlan
