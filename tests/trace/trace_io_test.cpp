// Tests for the MWTR v2 binary trace format: TraceWriter/TraceReader
// round-trips, writer misuse, and the typed rejection of every class of
// malformed input (wrong magic, legacy v1 files, unknown versions,
// truncation, non-monotone stream timestamps, corrupt records).
#include "trace/trace_io.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "trace/format.hpp"

namespace mobiwlan::trace {
namespace {

std::string tmp(const char* name) { return ::testing::TempDir() + "/" + name; }

TraceHeader scalar_header() {
  TraceHeader h;
  h.stream_mask = stream_bit(StreamKind::kRssi) | stream_bit(StreamKind::kTof);
  h.n_units = 2;
  h.n_tx = 1;
  h.n_rx = 1;
  h.n_sc = 1;
  return h;
}

CsiMatrix test_matrix(std::size_t n_tx, std::size_t n_rx, std::size_t n_sc,
                      double salt) {
  CsiMatrix m(n_tx, n_rx, n_sc);
  for (std::size_t tx = 0; tx < n_tx; ++tx)
    for (std::size_t rx = 0; rx < n_rx; ++rx)
      for (std::size_t sc = 0; sc < n_sc; ++sc)
        m.at(tx, rx, sc) = cplx(salt + static_cast<double>(sc),
                                salt - static_cast<double>(tx + rx));
  return m;
}

// ---- little-endian byte assembly for hand-crafted malformed files ---------

void put_u32(std::vector<unsigned char>& b, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) b.push_back((v >> (8 * i)) & 0xFF);
}

void put_u16(std::vector<unsigned char>& b, std::uint16_t v) {
  b.push_back(v & 0xFF);
  b.push_back((v >> 8) & 0xFF);
}

void put_f64(std::vector<unsigned char>& b, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  for (int i = 0; i < 8; ++i) b.push_back((bits >> (8 * i)) & 0xFF);
}

void put_header(std::vector<unsigned char>& b, std::uint32_t magic,
                std::uint32_t version, std::uint32_t mask) {
  put_u32(b, magic);
  put_u32(b, version);
  put_u32(b, mask);
  put_u32(b, 1);  // n_units
  put_u32(b, 1);  // n_tx
  put_u32(b, 1);  // n_rx
  put_u32(b, 1);  // n_sc
  put_u32(b, 0);  // reserved
  put_f64(b, 0.0);
  put_f64(b, 0.0);
}

void put_scalar_record(std::vector<unsigned char>& b, StreamKind kind,
                       std::uint8_t flags, std::uint16_t unit, double t,
                       double value) {
  b.push_back(static_cast<unsigned char>(kind));
  b.push_back(flags);
  put_u16(b, unit);
  put_f64(b, t);
  if (!(flags & kFlagAbsent)) put_f64(b, value);
}

void write_bytes(const std::string& path, const std::vector<unsigned char>& b) {
  std::ofstream f(path, std::ios::binary);
  ASSERT_TRUE(f.is_open());
  f.write(reinterpret_cast<const char*>(b.data()),
          static_cast<std::streamsize>(b.size()));
}

TraceError::Code code_of(const std::string& path) {
  try {
    TraceReader reader(path);
    TraceRecord rec;
    while (reader.next(rec)) {
    }
  } catch (const TraceError& e) {
    return e.code();
  }
  ADD_FAILURE() << path << " was accepted";
  return TraceError::Code::kOpenFailed;
}

// ---- round-trips -----------------------------------------------------------

TEST(TraceIoTest, ScalarRoundTrip) {
  const std::string path = tmp("io_scalar.mwtr");
  {
    TraceWriter writer(path, scalar_header());
    writer.put_scalar(StreamKind::kRssi, 0, 0.0, -55.5);
    writer.put_scalar(StreamKind::kTof, 1, 0.0, 412.25);
    writer.put_scalar(StreamKind::kRssi, 0, 0.1, -56.0);
    writer.close();
    EXPECT_EQ(writer.records_written(), 3u);
  }
  TraceReader reader(path);
  EXPECT_EQ(reader.header().stream_mask, scalar_header().stream_mask);
  EXPECT_EQ(reader.header().n_units, 2u);
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.kind, StreamKind::kRssi);
  EXPECT_EQ(rec.unit, 0u);
  EXPECT_TRUE(rec.present);
  EXPECT_DOUBLE_EQ(rec.t, 0.0);
  EXPECT_DOUBLE_EQ(rec.scalar, -55.5);
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.kind, StreamKind::kTof);
  EXPECT_EQ(rec.unit, 1u);
  EXPECT_DOUBLE_EQ(rec.scalar, 412.25);
  ASSERT_TRUE(reader.next(rec));
  EXPECT_DOUBLE_EQ(rec.scalar, -56.0);
  EXPECT_FALSE(reader.next(rec));
  EXPECT_EQ(reader.records_read(), 3u);
  std::remove(path.c_str());
}

TEST(TraceIoTest, MatrixRoundTripBitwise) {
  const std::string path = tmp("io_matrix.mwtr");
  TraceHeader h;
  h.stream_mask = stream_bit(StreamKind::kCsi);
  h.n_tx = 2;
  h.n_rx = 2;
  h.n_sc = 3;
  const CsiMatrix m = test_matrix(2, 2, 3, 0.75);
  {
    TraceWriter writer(path, h);
    writer.put_csi(StreamKind::kCsi, 0, 1.5, m);
    writer.close();
  }
  TraceReader reader(path);
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_EQ(rec.kind, StreamKind::kCsi);
  EXPECT_DOUBLE_EQ(rec.t, 1.5);
  ASSERT_EQ(rec.csi.n_tx(), 2u);
  ASSERT_EQ(rec.csi.n_rx(), 2u);
  ASSERT_EQ(rec.csi.n_subcarriers(), 3u);
  for (std::size_t tx = 0; tx < 2; ++tx)
    for (std::size_t rx = 0; rx < 2; ++rx)
      for (std::size_t sc = 0; sc < 3; ++sc)
        EXPECT_EQ(rec.csi.at(tx, rx, sc), m.at(tx, rx, sc));
  std::remove(path.c_str());
}

TEST(TraceIoTest, AbsenceRecordRoundTrips) {
  const std::string path = tmp("io_absent.mwtr");
  {
    TraceWriter writer(path, scalar_header());
    writer.put_scalar(StreamKind::kRssi, 0, 0.0, -50.0);
    writer.put_absent(StreamKind::kRssi, 0, 0.1);
    writer.put_scalar(StreamKind::kRssi, 0, 0.2, -51.0);
    writer.close();
  }
  TraceReader reader(path);
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_TRUE(rec.present);
  ASSERT_TRUE(reader.next(rec));
  EXPECT_FALSE(rec.present);
  EXPECT_DOUBLE_EQ(rec.t, 0.1);
  ASSERT_TRUE(reader.next(rec));
  EXPECT_TRUE(rec.present);
  EXPECT_DOUBLE_EQ(rec.scalar, -51.0);
  std::remove(path.c_str());
}

TEST(TraceIoTest, DuplicateTimestampsAreLegal) {
  const std::string path = tmp("io_dup.mwtr");
  {
    TraceWriter writer(path, scalar_header());
    writer.put_scalar(StreamKind::kRssi, 0, 0.5, -50.0);
    writer.put_scalar(StreamKind::kRssi, 0, 0.5, -51.0);  // same t: a re-read
    writer.close();
  }
  TraceReader reader(path);
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_DOUBLE_EQ(rec.scalar, -50.0);
  ASSERT_TRUE(reader.next(rec));
  EXPECT_DOUBLE_EQ(rec.scalar, -51.0);
  std::remove(path.c_str());
}

// ---- writer misuse ---------------------------------------------------------

TEST(TraceIoTest, WriterRejectsUndeclaredStream) {
  const std::string path = tmp("io_undeclared.mwtr");
  TraceWriter writer(path, scalar_header());
  try {
    writer.put_scalar(StreamKind::kSnr, 0, 0.0, 10.0);
    FAIL() << "undeclared stream accepted";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.code(), TraceError::Code::kMissingStream);
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, WriterRejectsUnitOutOfRange) {
  const std::string path = tmp("io_unit.mwtr");
  TraceWriter writer(path, scalar_header());  // n_units = 2
  try {
    writer.put_scalar(StreamKind::kRssi, 2, 0.0, -50.0);
    FAIL() << "out-of-range unit accepted";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.code(), TraceError::Code::kCorruptRecord);
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, WriterRejectsTimeRegression) {
  const std::string path = tmp("io_regress.mwtr");
  TraceWriter writer(path, scalar_header());
  writer.put_scalar(StreamKind::kRssi, 0, 1.0, -50.0);
  // A different stream (other unit) may still start earlier...
  writer.put_scalar(StreamKind::kRssi, 1, 0.5, -60.0);
  // ...but the same (kind, unit) stream must never regress.
  try {
    writer.put_scalar(StreamKind::kRssi, 0, 0.5, -50.0);
    FAIL() << "time regression accepted";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.code(), TraceError::Code::kNonMonotoneTime);
  }
  std::remove(path.c_str());
}

TEST(TraceIoTest, WriterRejectsGeometryMismatch) {
  const std::string path = tmp("io_geom.mwtr");
  TraceHeader h;
  h.stream_mask = stream_bit(StreamKind::kCsi);
  h.n_tx = 2;
  h.n_rx = 2;
  h.n_sc = 3;
  TraceWriter writer(path, h);
  try {
    writer.put_csi(StreamKind::kCsi, 0, 0.0, test_matrix(1, 1, 3, 0.0));
    FAIL() << "geometry mismatch accepted";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.code(), TraceError::Code::kBadGeometry);
  }
  std::remove(path.c_str());
}

// ---- malformed input -------------------------------------------------------

TEST(TraceIoTest, MissingFileIsOpenFailed) {
  try {
    TraceReader reader("/nonexistent/path/trace.mwtr");
    FAIL() << "missing file accepted";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.code(), TraceError::Code::kOpenFailed);
  }
}

TEST(TraceIoTest, GarbageIsBadMagic) {
  const std::string path = tmp("io_garbage.mwtr");
  {
    std::ofstream f(path, std::ios::binary);
    f << "this is not a trace file at all, but it is long enough";
  }
  EXPECT_EQ(code_of(path), TraceError::Code::kBadMagic);
  std::remove(path.c_str());
}

TEST(TraceIoTest, LegacyV1MagicIsBadVersion) {
  // The legacy CsiTrace layout opens with "CSIT"; pointing the v2 reader at
  // it must say "wrong version", not "not a trace" — the user should learn
  // to re-record, not to suspect corruption.
  const std::string path = tmp("io_legacy.mwtr");
  std::vector<unsigned char> b;
  put_u32(b, 0x43534954u);  // legacy v1 magic
  put_u32(b, 1);
  write_bytes(path, b);
  EXPECT_EQ(code_of(path), TraceError::Code::kBadVersion);
  std::remove(path.c_str());
}

TEST(TraceIoTest, UnknownVersionIsBadVersion) {
  const std::string path = tmp("io_version.mwtr");
  std::vector<unsigned char> b;
  put_header(b, kMagic, kFormatVersion + 1,
             stream_bit(StreamKind::kRssi));
  write_bytes(path, b);
  EXPECT_EQ(code_of(path), TraceError::Code::kBadVersion);
  std::remove(path.c_str());
}

TEST(TraceIoTest, TruncatedHeaderIsTruncated) {
  const std::string path = tmp("io_trunc_header.mwtr");
  std::vector<unsigned char> b;
  put_u32(b, kMagic);
  put_u32(b, kFormatVersion);
  put_u32(b, stream_bit(StreamKind::kRssi));  // header stops mid-way
  write_bytes(path, b);
  EXPECT_EQ(code_of(path), TraceError::Code::kTruncated);
  std::remove(path.c_str());
}

TEST(TraceIoTest, TruncatedChunkIsTruncated) {
  const std::string path = tmp("io_trunc_chunk.mwtr");
  {
    TraceWriter writer(path, scalar_header());
    for (int i = 0; i < 16; ++i)
      writer.put_scalar(StreamKind::kRssi, 0, 0.1 * i, -50.0 - i);
    writer.close();
  }
  // Chop the tail off the valid file: EOF lands inside the chunk payload.
  std::ifstream in(path, std::ios::binary);
  std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  in.close();
  ASSERT_GT(bytes.size(), 60u);
  bytes.resize(bytes.size() - 7);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  }
  EXPECT_EQ(code_of(path), TraceError::Code::kTruncated);
  std::remove(path.c_str());
}

TEST(TraceIoTest, NonMonotoneTimestampsRejected) {
  const std::string path = tmp("io_nonmono.mwtr");
  std::vector<unsigned char> b;
  put_header(b, kMagic, kFormatVersion, stream_bit(StreamKind::kRssi));
  std::vector<unsigned char> records;
  put_scalar_record(records, StreamKind::kRssi, 0, 0, 1.0, -50.0);
  put_scalar_record(records, StreamKind::kRssi, 0, 0, 0.5, -51.0);  // regress
  put_u32(b, 2);  // record_count
  put_u32(b, static_cast<std::uint32_t>(records.size()));
  b.insert(b.end(), records.begin(), records.end());
  write_bytes(path, b);
  EXPECT_EQ(code_of(path), TraceError::Code::kNonMonotoneTime);
  std::remove(path.c_str());
}

TEST(TraceIoTest, UnknownStreamKindIsCorrupt) {
  const std::string path = tmp("io_badkind.mwtr");
  std::vector<unsigned char> b;
  put_header(b, kMagic, kFormatVersion, stream_bit(StreamKind::kRssi));
  std::vector<unsigned char> records;
  records.push_back(200);  // not a StreamKind
  records.push_back(0);
  put_u16(records, 0);
  put_f64(records, 0.0);
  put_f64(records, -50.0);
  put_u32(b, 1);
  put_u32(b, static_cast<std::uint32_t>(records.size()));
  b.insert(b.end(), records.begin(), records.end());
  write_bytes(path, b);
  EXPECT_EQ(code_of(path), TraceError::Code::kCorruptRecord);
  std::remove(path.c_str());
}

TEST(TraceIoTest, UnknownMaskBitsRejected) {
  // Additive evolution policy: a trace declaring stream kinds this reader
  // does not know must be refused loudly, never skipped silently.
  const std::string path = tmp("io_badmask.mwtr");
  std::vector<unsigned char> b;
  put_header(b, kMagic, kFormatVersion, 1u << 31);
  write_bytes(path, b);
  EXPECT_EQ(code_of(path), TraceError::Code::kBadGeometry);
  std::remove(path.c_str());
}

TEST(TraceIoTest, CloseIsIdempotentAndFlushes) {
  const std::string path = tmp("io_close.mwtr");
  TraceWriter writer(path, scalar_header());
  writer.put_scalar(StreamKind::kRssi, 0, 0.0, -42.0);
  writer.close();
  writer.close();  // no-op
  TraceReader reader(path);
  TraceRecord rec;
  ASSERT_TRUE(reader.next(rec));
  EXPECT_DOUBLE_EQ(rec.scalar, -42.0);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mobiwlan::trace
