// End-to-end record/replay determinism at the protocol-loop level: a loop
// run over a RecordingSource tee and re-run from the recorded trace alone
// must produce bit-identical results. The full matrix (all loops, fault
// levels, seeds) runs in `mobiwlan-bench --trace`; these are the fast
// regression versions.
#include <gtest/gtest.h>

#include <cstdio>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "chan/scenario.hpp"
#include "mac/atheros_ra.hpp"
#include "mac/link_sim.hpp"
#include "runtime/classifier_driver.hpp"
#include "sim/beamforming_sim.hpp"
#include "trace/source.hpp"
#include "trace/trace_io.hpp"
#include "trace/trace_source.hpp"

namespace mobiwlan {
namespace {

std::string tmp(const char* name) { return ::testing::TempDir() + "/" + name; }

TEST(TraceReplayTest, LinkSimReplaysBitIdentically) {
  const std::string path = tmp("replay_link.mwtr");
  LinkSimConfig cfg;
  cfg.duration_s = 2.0;
  cfg.provide_sensor_hint = true;
  cfg.provide_phy_feedback = true;
  LinkSimResult live_r;
  {
    Rng rng(11);
    Scenario s = make_scenario(MobilityClass::kMacro, rng);
    trace::LiveChannelSource live(*s.channel);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(live, ChannelConfig{}));
    trace::RecordingSource rec(live, writer);
    AtherosRa ra = make_mobility_aware_atheros_ra();
    Rng sim_rng(12);
    live_r = simulate_link(rec, ra, cfg, sim_rng, s.truth);
    writer.close();
  }
  trace::TraceSource replay(path);  // strict: any skew would throw
  AtherosRa ra = make_mobility_aware_atheros_ra();
  Rng sim_rng(12);
  const LinkSimResult replay_r =
      simulate_link(replay, ra, cfg, sim_rng, MobilityClass::kMacro);
  EXPECT_EQ(live_r.goodput_mbps, replay_r.goodput_mbps);
  EXPECT_EQ(live_r.mean_per, replay_r.mean_per);
  EXPECT_EQ(live_r.frames, replay_r.frames);
  EXPECT_EQ(live_r.mpdus_sent, replay_r.mpdus_sent);
  EXPECT_EQ(live_r.mpdus_lost, replay_r.mpdus_lost);
  EXPECT_EQ(live_r.mcs_series, replay_r.mcs_series);
  EXPECT_EQ(live_r.mode_series, replay_r.mode_series);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, DegradedLinkSimReplaysItsAbsencePattern) {
  const std::string path = tmp("replay_link_fault.mwtr");
  LinkSimConfig cfg;
  cfg.duration_s = 2.0;
  FaultPlan plan;
  plan.csi.drop_prob = 0.3;
  plan.tof.drop_prob = 0.3;
  plan.seed = 5;
  LinkSimResult live_r;
  {
    Rng rng(21);
    Scenario s = make_scenario(MobilityClass::kMicro, rng);
    trace::LiveChannelSource live(*s.channel);
    trace::FaultedSource faulted(live, plan);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(faulted, ChannelConfig{}));
    trace::RecordingSource rec(faulted, writer);
    AtherosRa ra = make_mobility_aware_atheros_ra();
    Rng sim_rng(22);
    live_r = simulate_link(rec, ra, cfg, sim_rng, s.truth);
    writer.close();
  }
  // Replay is strict and UNfaulted: the degradation pattern lives in the
  // trace itself as absence records.
  trace::TraceSource replay(path);
  AtherosRa ra = make_mobility_aware_atheros_ra();
  Rng sim_rng(22);
  const LinkSimResult replay_r =
      simulate_link(replay, ra, cfg, sim_rng, MobilityClass::kMicro);
  EXPECT_EQ(live_r.goodput_mbps, replay_r.goodput_mbps);
  EXPECT_EQ(live_r.mpdus_sent, replay_r.mpdus_sent);
  EXPECT_EQ(live_r.mpdus_lost, replay_r.mpdus_lost);
  EXPECT_EQ(live_r.mcs_series, replay_r.mcs_series);
  EXPECT_EQ(live_r.mode_series, replay_r.mode_series);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, ClassifierDecisionsReplayExactly) {
  const std::string path = tmp("replay_clf.mwtr");
  using Log = std::vector<std::pair<double, std::optional<MobilityMode>>>;
  Log live_log, replay_log;
  {
    Rng rng(31);
    Scenario s = make_scenario(MobilityClass::kEnvironmental, rng);
    trace::LiveChannelSource live(*s.channel);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(live, ChannelConfig{}));
    trace::RecordingSource rec(live, writer);
    runtime::run_classifier_from_source(
        rec, 0, 15.0, 5.0, [&](double t, std::optional<MobilityMode> m) {
          live_log.emplace_back(t, m);
        });
    writer.close();
  }
  trace::TraceSource replay(path);
  runtime::run_classifier_from_source(
      replay, 0, 15.0, 5.0, [&](double t, std::optional<MobilityMode> m) {
        replay_log.emplace_back(t, m);
      });
  ASSERT_FALSE(live_log.empty());
  EXPECT_EQ(live_log, replay_log);
  std::remove(path.c_str());
}

TEST(TraceReplayTest, ReplayRefusesTraceMissingRequiredStream) {
  const std::string path = tmp("replay_missing.mwtr");
  {
    Rng rng(41);
    Scenario s = make_scenario(MobilityClass::kStatic, rng);
    trace::LiveChannelSource live(*s.channel);
    trace::TraceWriter writer(
        path, trace::RecordingSource::header_for(live, ChannelConfig{}));
    trace::RecordingSource rec(live, writer);
    runtime::run_classifier_from_source(rec, 0, 6.0, 5.0,
                                        [](double, std::optional<MobilityMode>) {});
    writer.close();
  }
  trace::TraceSource::Config cfg;
  cfg.ignore_mask = trace::stream_bit(trace::StreamKind::kTof);
  trace::TraceSource replay(path, cfg);
  try {
    runtime::run_classifier_from_source(replay, 0, 6.0, 5.0,
                                        [](double, std::optional<MobilityMode>) {});
    FAIL() << "classifier ran without its required ToF stream";
  } catch (const trace::TraceError& e) {
    EXPECT_EQ(e.code(), trace::TraceError::Code::kMissingStream);
  }
  std::remove(path.c_str());
}

TEST(TraceReplayTest, MuMimoTraceFilesRejectMalformedInput) {
  const std::string path = tmp("replay_mumimo_bad.mwtr");
  {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fputs("garbage, not a recorded client trace", f);
    std::fclose(f);
  }
  BeamformingSimConfig cfg;
  try {
    (void)simulate_mu_mimo_trace_files({path}, cfg);
    FAIL() << "malformed client trace accepted";
  } catch (const trace::TraceError& e) {
    EXPECT_EQ(e.code(), trace::TraceError::Code::kBadMagic);
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mobiwlan
