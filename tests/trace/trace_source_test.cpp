// Tests for the ObservableSource hierarchy: TraceSource replay semantics
// (strict skew detection, relaxed hold-then-decay, recorded-absence replay,
// counters, stream gating), RecordingSource tee behaviour, and FaultedSource
// composition over a replayed trace.
#include "trace/trace_source.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "chan/scenario.hpp"
#include "trace/source.hpp"
#include "trace/trace_io.hpp"

namespace mobiwlan::trace {
namespace {

std::string tmp(const char* name) { return ::testing::TempDir() + "/" + name; }

/// Two-unit scalar trace: RSSI at a 0.1 s cadence on both units, one
/// recorded absence on unit 0 at t=0.2, ToF on unit 0 only.
std::string write_scalar_trace(const char* name) {
  const std::string path = tmp(name);
  TraceHeader h;
  h.stream_mask = stream_bit(StreamKind::kRssi) | stream_bit(StreamKind::kTof);
  h.n_units = 2;
  h.n_tx = 1;
  h.n_rx = 1;
  h.n_sc = 1;
  TraceWriter writer(path, h);
  for (int i = 0; i < 5; ++i) {
    const double t = 0.1 * i;
    if (i == 2)
      writer.put_absent(StreamKind::kRssi, 0, t);
    else
      writer.put_scalar(StreamKind::kRssi, 0, t, -50.0 - i);
    writer.put_scalar(StreamKind::kRssi, 1, t, -60.0 - i);
    writer.put_scalar(StreamKind::kTof, 0, t, 400.0 + i);
  }
  writer.close();
  return path;
}

TEST(TraceSourceTest, StrictReplayServesRecordedReads) {
  const std::string path = write_scalar_trace("src_strict.mwtr");
  TraceSource src(path);
  EXPECT_EQ(src.n_units(), 2u);
  EXPECT_TRUE(src.has(StreamKind::kRssi));
  EXPECT_FALSE(src.has(StreamKind::kCsi));
  EXPECT_EQ(src.rssi_dbm(0, 0.0), -50.0);
  EXPECT_EQ(src.rssi_dbm(1, 0.0), -60.0);
  EXPECT_EQ(src.tof_cycles(0, 0.0), 400.0);
  EXPECT_EQ(src.rssi_dbm(0, 0.1), -51.0);
  EXPECT_EQ(src.counters().served, 4u);
  std::remove(path.c_str());
}

TEST(TraceSourceTest, RecordedAbsenceReplaysAsAbsent) {
  const std::string path = write_scalar_trace("src_absent.mwtr");
  TraceSource src(path);
  EXPECT_TRUE(src.rssi_dbm(0, 0.0));
  EXPECT_TRUE(src.rssi_dbm(0, 0.1));
  EXPECT_FALSE(src.rssi_dbm(0, 0.2));  // the dropped export, replayed
  EXPECT_EQ(src.rssi_dbm(0, 0.3), -53.0);
  EXPECT_EQ(src.counters().absent, 1u);
  std::remove(path.c_str());
}

TEST(TraceSourceTest, StrictThrowsOnSkippedRecord) {
  const std::string path = write_scalar_trace("src_skip.mwtr");
  TraceSource src(path);
  EXPECT_TRUE(src.rssi_dbm(0, 0.0));
  try {
    (void)src.rssi_dbm(0, 0.35);  // would silently pass over t=0.1..0.3
    FAIL() << "skipped records accepted in strict mode";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.code(), TraceError::Code::kTimestampSkew);
  }
  std::remove(path.c_str());
}

TEST(TraceSourceTest, StrictThrowsOnUnmatchedQuery) {
  const std::string path = write_scalar_trace("src_unmatched.mwtr");
  TraceSource src(path);
  try {
    (void)src.rssi_dbm(0, 0.05);  // between records: no read at this time
    FAIL() << "unmatched query accepted in strict mode";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.code(), TraceError::Code::kTimestampSkew);
  }
  std::remove(path.c_str());
}

TEST(TraceSourceTest, RelaxedCountsSkippedAndMissing) {
  const std::string path = write_scalar_trace("src_relaxed.mwtr");
  TraceSource::Config cfg;
  cfg.strict = false;
  TraceSource src(path, cfg);
  EXPECT_EQ(src.rssi_dbm(0, 0.35), std::nullopt);  // no hold configured
  EXPECT_GT(src.counters().skipped, 0u);
  EXPECT_EQ(src.counters().missing, 1u);
  EXPECT_EQ(src.rssi_dbm(0, 0.4), -54.0);  // stream still consumable
  std::remove(path.c_str());
}

TEST(TraceSourceTest, RelaxedHoldServesRecentRecordThenDecays) {
  const std::string path = write_scalar_trace("src_hold.mwtr");
  TraceSource::Config cfg;
  cfg.strict = false;
  cfg.max_age_s = 0.15;
  TraceSource src(path, cfg);
  EXPECT_EQ(src.rssi_dbm(0, 0.1), -51.0);
  // 0.22 matches no record (the t=0.2 read was an absence) but the t=0.1
  // value is younger than max_age_s, so it is held...
  EXPECT_EQ(src.rssi_dbm(0, 0.22), -51.0);
  EXPECT_EQ(src.counters().held, 1u);
  // ...while far past the last record the hold expires: gaps decay, they are
  // never interpolated or extended forever.
  EXPECT_EQ(src.rssi_dbm(0, 2.0), std::nullopt);
  EXPECT_GT(src.counters().missing, 0u);
  std::remove(path.c_str());
}

TEST(TraceSourceTest, IgnoreMaskHidesStreamAndRequireRefuses) {
  const std::string path = write_scalar_trace("src_ignore.mwtr");
  TraceSource::Config cfg;
  cfg.ignore_mask = stream_bit(StreamKind::kTof);
  TraceSource src(path, cfg);
  EXPECT_FALSE(src.has(StreamKind::kTof));
  EXPECT_EQ(src.tof_cycles(0, 0.0), std::nullopt);
  try {
    src.require({StreamKind::kRssi, StreamKind::kTof}, "test consumer");
    FAIL() << "require() accepted a hidden stream";
  } catch (const TraceError& e) {
    EXPECT_EQ(e.code(), TraceError::Code::kMissingStream);
  }
  // The un-hidden stream alone passes.
  src.require({StreamKind::kRssi}, "test consumer");
  std::remove(path.c_str());
}

TEST(TraceSourceTest, FeedbackDefaultsToDeliveredWithoutStream) {
  const std::string path = write_scalar_trace("src_fb.mwtr");
  TraceSource src(path);
  EXPECT_TRUE(src.feedback_delivered(0, 0.0));  // no kFeedbackOk stream
  std::remove(path.c_str());
}

TEST(TraceSourceTest, FeedbackOkStreamReplaysOutcomes) {
  const std::string path = tmp("src_fbok.mwtr");
  TraceHeader h;
  h.stream_mask = stream_bit(StreamKind::kFeedbackOk);
  h.n_tx = 1;
  h.n_rx = 1;
  h.n_sc = 1;
  {
    TraceWriter writer(path, h);
    writer.put_scalar(StreamKind::kFeedbackOk, 0, 0.0, 1.0);
    writer.put_scalar(StreamKind::kFeedbackOk, 0, 0.1, 0.0);
    writer.close();
  }
  TraceSource src(path);
  EXPECT_TRUE(src.feedback_delivered(0, 0.0));
  EXPECT_FALSE(src.feedback_delivered(0, 0.1));
  std::remove(path.c_str());
}

TEST(TraceSourceTest, StrongestUnitIsFirstWinsArgmax) {
  const std::string path = tmp("src_argmax.mwtr");
  TraceHeader h;
  h.stream_mask = stream_bit(StreamKind::kScanRssi);
  h.n_units = 3;
  h.n_tx = 1;
  h.n_rx = 1;
  h.n_sc = 1;
  {
    TraceWriter writer(path, h);
    writer.put_scalar(StreamKind::kScanRssi, 0, 0.0, -70.0);
    writer.put_scalar(StreamKind::kScanRssi, 1, 0.0, -55.0);
    writer.put_scalar(StreamKind::kScanRssi, 2, 0.0, -55.0);  // tie: 1 wins
    writer.close();
  }
  TraceSource src(path);
  EXPECT_EQ(src.strongest_unit(0.0), 1u);
  std::remove(path.c_str());
}

// ---- RecordingSource -------------------------------------------------------

TEST(RecordingSourceTest, TeeRecordsEveryReadIncludingAbsences) {
  Rng rng(7);
  Scenario s = make_scenario(MobilityClass::kMicro, rng);
  const std::string path = tmp("rec_tee.mwtr");
  FaultPlan plan;
  plan.rssi.drop_prob = 0.5;
  plan.seed = 99;
  {
    LiveChannelSource live(*s.channel);
    FaultedSource faulted(live, plan);
    TraceWriter writer(path,
                       RecordingSource::header_for(faulted, ChannelConfig{}));
    RecordingSource rec(faulted, writer);
    std::size_t present = 0;
    for (int i = 0; i < 50; ++i)
      if (rec.rssi_dbm(0, 0.01 * i)) ++present;
    // 50% drops: some reads must have gone each way.
    EXPECT_GT(present, 0u);
    EXPECT_LT(present, 50u);
    writer.close();
    EXPECT_EQ(writer.records_written(), 50u);  // absences recorded too
  }
  // The replay reproduces the same present/absent pattern and values.
  Rng rng2(7);
  Scenario s2 = make_scenario(MobilityClass::kMicro, rng2);
  LiveChannelSource live2(*s2.channel);
  FaultedSource faulted2(live2, plan);
  TraceSource replay(path);
  for (int i = 0; i < 50; ++i) {
    const double t = 0.01 * i;
    EXPECT_EQ(replay.rssi_dbm(0, t), faulted2.rssi_dbm(0, t)) << "i=" << i;
  }
  std::remove(path.c_str());
}

TEST(RecordingSourceTest, HeaderMaskMirrorsInnerSource) {
  Rng rng(3);
  Scenario s = make_scenario(MobilityClass::kStatic, rng);
  LiveChannelSource live(*s.channel);
  const TraceHeader h = RecordingSource::header_for(live, ChannelConfig{});
  EXPECT_EQ(h.n_units, 1u);
  for (std::size_t k = 0; k < kNumStreamKinds; ++k) {
    const StreamKind kind = static_cast<StreamKind>(k);
    EXPECT_EQ(h.has(kind), live.has(kind)) << to_string(kind);
  }
  const ChannelConfig cfg;
  EXPECT_EQ(h.n_tx, cfg.n_tx);
  EXPECT_EQ(h.n_rx, cfg.n_rx);
  EXPECT_EQ(h.n_sc, cfg.n_subcarriers);
}

// ---- FaultedSource over a replayed trace -----------------------------------

TEST(FaultedSourceTest, CompositionOverReplayIsDeterministic) {
  const std::string path = tmp("fault_compose.mwtr");
  TraceHeader h;
  h.stream_mask = stream_bit(StreamKind::kRssi);
  h.n_tx = 1;
  h.n_rx = 1;
  h.n_sc = 1;
  {
    TraceWriter writer(path, h);
    for (int i = 0; i < 100; ++i)
      writer.put_scalar(StreamKind::kRssi, 0, 0.01 * i, -50.0 - 0.1 * i);
    writer.close();
  }
  FaultPlan plan;
  plan.rssi.drop_prob = 0.3;
  plan.seed = 42;
  auto run = [&] {
    TraceSource::Config cfg;
    cfg.strict = false;  // replay-time drops skip recorded reads
    TraceSource replay(path, cfg);
    FaultedSource faulted(replay, plan);
    std::vector<std::optional<double>> out;
    for (int i = 0; i < 100; ++i) out.push_back(faulted.rssi_dbm(0, 0.01 * i));
    return out;
  };
  const auto a = run();
  const auto b = run();
  EXPECT_EQ(a, b);
  std::size_t dropped = 0;
  for (const auto& v : a)
    if (!v) ++dropped;
  EXPECT_GT(dropped, 0u);
  EXPECT_LT(dropped, 100u);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mobiwlan::trace
