// fastmath accuracy: sincos and log_pos against libm, in ulps, across the
// documented domain, plus exact pinning of the domain edges.
//
// The header promises ~2 ulp for sincos on |x| <= kSincosMaxArg and ~1 ulp
// for log_pos on finite normal positives. Near the trig zeros (x ~ k*pi) a
// relative (ulp) bound is meaningless — the reduction's ~1e-17 absolute
// error is astronomically many ulps of a ~1e-17 result — so the check there
// falls back to an absolute budget derived from the reduction error.
#include "util/fastmath.hpp"

#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include <gtest/gtest.h>

#include "util/rng.hpp"
#include "util/simd.hpp"
#include "util/simd_math.hpp"

namespace mobiwlan {
namespace {

/// Distance in representable doubles between a and b (same-sign finite).
std::uint64_t ulp_distance(double a, double b) {
  auto ordered = [](double x) -> std::int64_t {
    const std::int64_t bits = std::bit_cast<std::int64_t>(x);
    return bits >= 0 ? bits : std::int64_t(0x8000000000000000ULL) - bits;
  };
  const std::int64_t da = ordered(a);
  const std::int64_t db = ordered(b);
  return static_cast<std::uint64_t>(da > db ? da - db : db - da);
}

/// sincos bound: <= 4 ulp, or <= 1e-16 absolute near the zeros where the
/// result underflows the relative scale.
void expect_sincos_close(double x) {
  double s = 0.0, c = 0.0;
  fastmath::sincos(x, s, c);
  const double rs = std::sin(x);
  const double rc = std::cos(x);
  EXPECT_TRUE(ulp_distance(s, rs) <= 4 || std::abs(s - rs) <= 1e-16)
      << "sin(" << x << "): got " << s << " want " << rs << " ("
      << ulp_distance(s, rs) << " ulp)";
  EXPECT_TRUE(ulp_distance(c, rc) <= 4 || std::abs(c - rc) <= 1e-16)
      << "cos(" << x << "): got " << c << " want " << rc << " ("
      << ulp_distance(c, rc) << " ulp)";
}

void expect_log_close(double x) {
  const double got = fastmath::log_pos(x);
  const double want = std::log(x);
  EXPECT_TRUE(ulp_distance(got, want) <= 2 || std::abs(got - want) <= 1e-18)
      << "log(" << x << "): got " << got << " want " << want << " ("
      << ulp_distance(got, want) << " ulp)";
}

TEST(FastmathTest, SincosGridAcrossDomain) {
  // Dense uniform grid over the full valid domain, hitting both halves.
  const double lim = fastmath::kSincosMaxArg;
  const int n = 200001;
  for (int i = 0; i < n; ++i) {
    const double x = -lim + (2.0 * lim) * static_cast<double>(i) /
                               static_cast<double>(n - 1);
    expect_sincos_close(x);
    if (::testing::Test::HasFailure()) break;  // one report, not 200k
  }
}

TEST(FastmathTest, SincosNearReductionBoundaries) {
  // Points adjacent to k*pi/2, where the reduced argument is smallest and
  // the quadrant switch in the kernel happens: the worst spots for both
  // cancellation and an off-by-one k.
  for (int k = -16; k <= 16; ++k) {
    const double boundary = static_cast<double>(k) * (M_PI / 2.0);
    if (std::abs(boundary) > fastmath::kSincosMaxArg) continue;
    for (const double eps :
         {0.0, 1e-16, -1e-16, 1e-12, -1e-12, 1e-8, -1e-8, 1e-4, -1e-4}) {
      const double x = boundary + eps;
      if (std::abs(x) > fastmath::kSincosMaxArg) continue;
      expect_sincos_close(x);
    }
  }
}

TEST(FastmathTest, SincosRandomPoints) {
  Rng rng(20140204);
  for (int i = 0; i < 100000; ++i) {
    expect_sincos_close(rng.uniform(-fastmath::kSincosMaxArg,
                                    fastmath::kSincosMaxArg));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(FastmathTest, SincosDomainEdges) {
  // Exact identities at 0 and sanity exactly at the documented limits.
  double s = 0.0, c = 0.0;
  fastmath::sincos(0.0, s, c);
  EXPECT_EQ(s, 0.0);
  EXPECT_EQ(c, 1.0);
  fastmath::sincos(-0.0, s, c);
  EXPECT_EQ(s, -0.0);
  EXPECT_EQ(c, 1.0);
  expect_sincos_close(fastmath::kSincosMaxArg);
  expect_sincos_close(-fastmath::kSincosMaxArg);
  expect_sincos_close(std::nextafter(fastmath::kSincosMaxArg, 0.0));
  expect_sincos_close(std::nextafter(-fastmath::kSincosMaxArg, 0.0));
}

TEST(FastmathTest, LogAcrossMagnitudes) {
  // Exponential sweep across the full normal range plus a dense linear one
  // around 1, where log() cancellation is most delicate.
  for (double x = DBL_MIN; x < 1e300; x *= 1.7) expect_log_close(x);
  for (int i = -1000; i <= 1000; ++i)
    expect_log_close(1.0 + static_cast<double>(i) * 1e-6);
  Rng rng(20140204);
  for (int i = 0; i < 100000; ++i) {
    expect_log_close(std::exp(rng.uniform(-700.0, 700.0)));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(FastmathTest, LogDomainEdges) {
  EXPECT_EQ(fastmath::log_pos(1.0), 0.0);  // exact by construction (k=0, f=0)
  expect_log_close(DBL_MIN);                       // smallest normal
  expect_log_close(DBL_MAX);                       // largest finite
  expect_log_close(std::nextafter(1.0, 0.0));      // 1 - ulp
  expect_log_close(std::nextafter(1.0, 2.0));      // 1 + ulp
  expect_log_close(2.0);
  expect_log_close(0.5);
  // sqrt(2)/2 boundary of the significand normalization, both sides.
  expect_log_close(std::nextafter(M_SQRT1_2, 0.0));
  expect_log_close(std::nextafter(M_SQRT1_2, 1.0));
}

// ---------------------------------------------------------------------------
// fp32 kernels — same shape as the fp64 suites above, with the bounds in
// float ulps (1 ulp_f32 ~ 1.19e-7 relative) against the double-precision
// libm evaluation rounded to float.
// ---------------------------------------------------------------------------

/// Distance in representable floats between a and b (same-sign finite).
std::uint32_t ulp_distance_f32(float a, float b) {
  auto ordered = [](float x) -> std::int32_t {
    const std::int32_t bits = std::bit_cast<std::int32_t>(x);
    return bits >= 0 ? bits : std::int32_t(0x80000000UL) - bits;
  };
  const std::int32_t da = ordered(a);
  const std::int32_t db = ordered(b);
  return static_cast<std::uint32_t>(da > db ? da - db : db - da);
}

/// sincos_f32 bound: <= 4 ulp_f32, or <= 4e-7 absolute near the trig zeros
/// (the float analogue of the fp64 budget: reduction error ~2^-30 plus the
/// polynomial's few-ulp tail).
void expect_sincos_f32_close(float x) {
  float s = 0.0f, c = 0.0f;
  fastmath::sincos_f32(x, s, c);
  const float rs = static_cast<float>(std::sin(static_cast<double>(x)));
  const float rc = static_cast<float>(std::cos(static_cast<double>(x)));
  EXPECT_TRUE(ulp_distance_f32(s, rs) <= 4 || std::abs(s - rs) <= 4e-7f)
      << "sincos_f32 sin(" << x << "): got " << s << " want " << rs << " ("
      << ulp_distance_f32(s, rs) << " ulp_f32)";
  EXPECT_TRUE(ulp_distance_f32(c, rc) <= 4 || std::abs(c - rc) <= 4e-7f)
      << "sincos_f32 cos(" << x << "): got " << c << " want " << rc << " ("
      << ulp_distance_f32(c, rc) << " ulp_f32)";
}

void expect_log_f32_close(float x) {
  const float got = fastmath::log_pos_f32(x);
  const float want = static_cast<float>(std::log(static_cast<double>(x)));
  EXPECT_TRUE(ulp_distance_f32(got, want) <= 2 || std::abs(got - want) <= 1e-9f)
      << "log_pos_f32(" << x << "): got " << got << " want " << want << " ("
      << ulp_distance_f32(got, want) << " ulp_f32)";
}

void expect_exp2_f32_close(float x) {
  const float got = fastmath::exp2_f32(x);
  const float want = static_cast<float>(std::exp2(static_cast<double>(x)));
  EXPECT_TRUE(ulp_distance_f32(got, want) <= 4)
      << "exp2_f32(" << x << "): got " << got << " want " << want << " ("
      << ulp_distance_f32(got, want) << " ulp_f32)";
}

TEST(FastmathF32Test, SincosGridAcrossDomain) {
  const float lim = fastmath::kSincosF32MaxArg;
  const int n = 200001;
  for (int i = 0; i < n; ++i) {
    const float x =
        -lim + (2.0f * lim) * static_cast<float>(i) / static_cast<float>(n - 1);
    expect_sincos_f32_close(x);
    if (::testing::Test::HasFailure()) break;  // one report, not 200k
  }
}

TEST(FastmathF32Test, SincosNearReductionBoundaries) {
  // Adjacent to k*pi/2: smallest reduced argument and the quadrant switch —
  // the worst spots for cancellation and an off-by-one k. The float grid of
  // offsets reaches down to 1 ulp of the boundary itself.
  for (int k = -40; k <= 40; ++k) {
    const float boundary =
        static_cast<float>(static_cast<double>(k) * (M_PI / 2.0));
    if (std::abs(boundary) > fastmath::kSincosF32MaxArg) continue;
    for (const float eps : {0.0f, 1e-7f, -1e-7f, 1e-5f, -1e-5f, 1e-3f, -1e-3f,
                            1e-1f, -1e-1f}) {
      const float x = boundary + eps;
      if (std::abs(x) > fastmath::kSincosF32MaxArg) continue;
      expect_sincos_f32_close(x);
    }
    expect_sincos_f32_close(std::nextafterf(boundary, 2.0f * boundary));
    expect_sincos_f32_close(std::nextafterf(boundary, 0.0f));
  }
}

TEST(FastmathF32Test, SincosRandomPoints) {
  Rng rng(20140204);
  for (int i = 0; i < 100000; ++i) {
    expect_sincos_f32_close(static_cast<float>(rng.uniform(
        -fastmath::kSincosF32MaxArg, fastmath::kSincosF32MaxArg)));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(FastmathF32Test, SincosDomainEdges) {
  float s = 0.0f, c = 0.0f;
  fastmath::sincos_f32(0.0f, s, c);
  EXPECT_EQ(s, 0.0f);
  EXPECT_EQ(c, 1.0f);
  fastmath::sincos_f32(-0.0f, s, c);
  EXPECT_EQ(s, -0.0f);
  EXPECT_EQ(c, 1.0f);
  // Exactly at and one float ulp inside the documented range limit.
  expect_sincos_f32_close(fastmath::kSincosF32MaxArg);
  expect_sincos_f32_close(-fastmath::kSincosF32MaxArg);
  expect_sincos_f32_close(std::nextafterf(fastmath::kSincosF32MaxArg, 0.0f));
  expect_sincos_f32_close(std::nextafterf(-fastmath::kSincosF32MaxArg, 0.0f));
  // Denormal inputs: sin(x) = x and cos(x) = 1 to every representable bit.
  for (const float x : {FLT_TRUE_MIN, -FLT_TRUE_MIN, FLT_MIN / 2.0f}) {
    fastmath::sincos_f32(x, s, c);
    EXPECT_EQ(s, x);
    EXPECT_EQ(c, 1.0f);
  }
}

TEST(FastmathF32Test, LogAcrossMagnitudes) {
  for (float x = FLT_MIN; x < 1e37f; x *= 1.7f) expect_log_f32_close(x);
  for (int i = -1000; i <= 1000; ++i)
    expect_log_f32_close(1.0f + static_cast<float>(i) * 1e-5f);
  Rng rng(20140204);
  for (int i = 0; i < 100000; ++i) {
    expect_log_f32_close(
        static_cast<float>(std::exp(rng.uniform(-87.0, 88.0))));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(FastmathF32Test, LogDomainEdges) {
  EXPECT_EQ(fastmath::log_pos_f32(1.0f), 0.0f);  // exact (k=0, f=0)
  expect_log_f32_close(FLT_MIN);                 // smallest normal
  expect_log_f32_close(FLT_MAX);                 // largest finite
  expect_log_f32_close(std::nextafterf(1.0f, 0.0f));
  expect_log_f32_close(std::nextafterf(1.0f, 2.0f));
  expect_log_f32_close(2.0f);
  expect_log_f32_close(0.5f);
  // sqrt(2)/2 boundary of the significand normalization, both sides.
  const float sqrt1_2 = static_cast<float>(M_SQRT1_2);
  expect_log_f32_close(std::nextafterf(sqrt1_2, 0.0f));
  expect_log_f32_close(std::nextafterf(sqrt1_2, 1.0f));
}

TEST(FastmathF32Test, Exp2AcrossDomain) {
  const float lim = fastmath::kExp2F32MaxArg;
  for (int i = -126000; i <= 126000; i += 7)
    expect_exp2_f32_close(static_cast<float>(i) * 1e-3f);
  Rng rng(20140204);
  for (int i = 0; i < 100000; ++i) {
    expect_exp2_f32_close(static_cast<float>(rng.uniform(-lim, lim)));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(FastmathF32Test, Exp2DomainEdges) {
  EXPECT_EQ(fastmath::exp2_f32(0.0f), 1.0f);
  // Integer arguments scale exactly (the polynomial evaluates at t=0).
  for (int k = -126; k <= 126; k += 3)
    EXPECT_EQ(fastmath::exp2_f32(static_cast<float>(k)),
              std::exp2(static_cast<float>(k)))
        << "k=" << k;
  // Half-integers sit exactly on the round-to-even reduction boundary.
  expect_exp2_f32_close(0.5f);
  expect_exp2_f32_close(-0.5f);
  expect_exp2_f32_close(125.5f);
  expect_exp2_f32_close(-125.5f);
  // At and one ulp inside the documented range limit; results stay normal.
  expect_exp2_f32_close(fastmath::kExp2F32MaxArg);
  expect_exp2_f32_close(-fastmath::kExp2F32MaxArg);
  expect_exp2_f32_close(std::nextafterf(fastmath::kExp2F32MaxArg, 0.0f));
  expect_exp2_f32_close(std::nextafterf(-fastmath::kExp2F32MaxArg, 0.0f));
  EXPECT_GE(fastmath::exp2_f32(-fastmath::kExp2F32MaxArg), FLT_MIN);
  EXPECT_TRUE(std::isfinite(fastmath::exp2_f32(fastmath::kExp2F32MaxArg)));
}

TEST(FastmathF32Test, DbToAmplitude) {
  // The documented bound grows with |db| (the float exponent product
  // rounds to ~|x| * 2^-24): ~3 ulp_f32 near 0 dB, ~0.12 * |db| ulp_f32
  // beyond. Check against the double-precision pow chain over the dB range
  // the channel code uses (path gains, noise floors).
  Rng rng(20140204);
  for (int i = 0; i < 50000; ++i) {
    const float db = static_cast<float>(rng.uniform(-200.0, 60.0));
    const float got = fastmath::db_to_amplitude_f32(db);
    const float want = static_cast<float>(
        std::pow(10.0, static_cast<double>(db) / 20.0));
    const std::uint32_t bound =
        4u + static_cast<std::uint32_t>(0.15 * std::abs(db));
    EXPECT_TRUE(ulp_distance_f32(got, want) <= bound)
        << "db_to_amplitude_f32(" << db << "): got " << got << " want "
        << want << " (" << ulp_distance_f32(got, want) << " ulp_f32, bound "
        << bound << ")";
    if (::testing::Test::HasFailure()) break;
  }
  EXPECT_EQ(fastmath::db_to_amplitude_f32(0.0f), 1.0f);
}

#if defined(__x86_64__)

// ---------------------------------------------------------------------------
// Tier agreement sweep: the vector fp32 kernels promise lane-for-lane
// agreement with the scalar fp32 path to ~1 ulp_f32 (same constants, same
// evaluation order — the only slack is scalar fmaf vs vector FMA rounding,
// which is none, and the compiler's freedom over non-fused ops). The sweep
// drives all three tiers over the same random batches and pins
// scalar-vs-avx2 to <= 1 ulp_f32 and avx2-vs-avx512 to bitwise equality
// (the f16 kernels are lane-widened ports with identical operations).
// Each wider tier is gated on host support — a loud GTEST_SKIP, not a
// silent pass, when the ISA is absent.
// ---------------------------------------------------------------------------

/// One 16-lane batch of every kernel at every supported tier.
struct TierSweepOut {
  float scalar_sin[16], scalar_cos[16], scalar_log[16], scalar_exp[16];
  float avx2_sin[16], avx2_cos[16], avx2_log[16], avx2_exp[16];
  float avx512_sin[16], avx512_cos[16], avx512_log[16], avx512_exp[16];
};

__attribute__((target("avx2,fma"))) void run_avx2_batch(
    const float* x_trig, const float* x_log, const float* x_exp,
    TierSweepOut& out) {
  for (int half = 0; half < 2; ++half) {
    const __m256 xt = _mm256_loadu_ps(x_trig + 8 * half);
    __m256 s, c;
    simdmath::vsincos_f8(xt, s, c);
    _mm256_storeu_ps(out.avx2_sin + 8 * half, s);
    _mm256_storeu_ps(out.avx2_cos + 8 * half, c);
    _mm256_storeu_ps(out.avx2_log + 8 * half,
                     simdmath::vlog_pos_f8(_mm256_loadu_ps(x_log + 8 * half)));
    _mm256_storeu_ps(out.avx2_exp + 8 * half,
                     simdmath::vexp2_f8(_mm256_loadu_ps(x_exp + 8 * half)));
  }
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) void run_avx512_batch(
    const float* x_trig, const float* x_log, const float* x_exp,
    TierSweepOut& out) {
  __m512 s, c;
  simdmath::vsincos_f16(_mm512_loadu_ps(x_trig), s, c);
  _mm512_storeu_ps(out.avx512_sin, s);
  _mm512_storeu_ps(out.avx512_cos, c);
  _mm512_storeu_ps(out.avx512_log,
                   simdmath::vlog_pos_f16(_mm512_loadu_ps(x_log)));
  _mm512_storeu_ps(out.avx512_exp,
                   simdmath::vexp2_f16(_mm512_loadu_ps(x_exp)));
}

TEST(FastmathF32Test, TierAgreementSweep) {
  if (!simd::avx2fma_supported())
    GTEST_SKIP() << "host lacks AVX2+FMA: vector fp32 kernels unavailable, "
                    "agreement sweep not run";
  const bool avx512 = simd::avx512_supported();
  if (!avx512)
    std::fputs(
        "[  NOTE    ] host lacks AVX-512 (f/dq/vl): sweep covers "
        "scalar-vs-avx2 only\n",
        stderr);
  Rng rng(20140204);
  TierSweepOut out;
  float x_trig[16], x_log[16], x_exp[16];
  for (int batch = 0; batch < 2000; ++batch) {
    for (int i = 0; i < 16; ++i) {
      x_trig[i] = static_cast<float>(rng.uniform(
          -fastmath::kSincosF32MaxArg, fastmath::kSincosF32MaxArg));
      x_log[i] = static_cast<float>(std::exp(rng.uniform(-87.0, 88.0)));
      x_exp[i] = static_cast<float>(rng.uniform(
          -fastmath::kExp2F32MaxArg, fastmath::kExp2F32MaxArg));
      fastmath::sincos_f32(x_trig[i], out.scalar_sin[i], out.scalar_cos[i]);
      out.scalar_log[i] = fastmath::log_pos_f32(x_log[i]);
      out.scalar_exp[i] = fastmath::exp2_f32(x_exp[i]);
    }
    run_avx2_batch(x_trig, x_log, x_exp, out);
    if (avx512) run_avx512_batch(x_trig, x_log, x_exp, out);
    for (int i = 0; i < 16; ++i) {
      EXPECT_LE(ulp_distance_f32(out.scalar_sin[i], out.avx2_sin[i]), 1u)
          << "sin lane " << i << " x=" << x_trig[i];
      EXPECT_LE(ulp_distance_f32(out.scalar_cos[i], out.avx2_cos[i]), 1u)
          << "cos lane " << i << " x=" << x_trig[i];
      EXPECT_LE(ulp_distance_f32(out.scalar_log[i], out.avx2_log[i]), 1u)
          << "log lane " << i << " x=" << x_log[i];
      EXPECT_LE(ulp_distance_f32(out.scalar_exp[i], out.avx2_exp[i]), 1u)
          << "exp2 lane " << i << " x=" << x_exp[i];
      if (avx512) {
        EXPECT_EQ(std::bit_cast<std::uint32_t>(out.avx2_sin[i]),
                  std::bit_cast<std::uint32_t>(out.avx512_sin[i]))
            << "sin lane " << i << " x=" << x_trig[i];
        EXPECT_EQ(std::bit_cast<std::uint32_t>(out.avx2_cos[i]),
                  std::bit_cast<std::uint32_t>(out.avx512_cos[i]))
            << "cos lane " << i << " x=" << x_trig[i];
        EXPECT_EQ(std::bit_cast<std::uint32_t>(out.avx2_log[i]),
                  std::bit_cast<std::uint32_t>(out.avx512_log[i]))
            << "log lane " << i << " x=" << x_log[i];
        EXPECT_EQ(std::bit_cast<std::uint32_t>(out.avx2_exp[i]),
                  std::bit_cast<std::uint32_t>(out.avx512_exp[i]))
            << "exp2 lane " << i << " x=" << x_exp[i];
      }
    }
    if (::testing::Test::HasFailure()) break;
  }
}

#endif  // defined(__x86_64__)

}  // namespace
}  // namespace mobiwlan
