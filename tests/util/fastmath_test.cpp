// fastmath accuracy: sincos and log_pos against libm, in ulps, across the
// documented domain, plus exact pinning of the domain edges.
//
// The header promises ~2 ulp for sincos on |x| <= kSincosMaxArg and ~1 ulp
// for log_pos on finite normal positives. Near the trig zeros (x ~ k*pi) a
// relative (ulp) bound is meaningless — the reduction's ~1e-17 absolute
// error is astronomically many ulps of a ~1e-17 result — so the check there
// falls back to an absolute budget derived from the reduction error.
#include "util/fastmath.hpp"

#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobiwlan {
namespace {

/// Distance in representable doubles between a and b (same-sign finite).
std::uint64_t ulp_distance(double a, double b) {
  auto ordered = [](double x) -> std::int64_t {
    const std::int64_t bits = std::bit_cast<std::int64_t>(x);
    return bits >= 0 ? bits : std::int64_t(0x8000000000000000ULL) - bits;
  };
  const std::int64_t da = ordered(a);
  const std::int64_t db = ordered(b);
  return static_cast<std::uint64_t>(da > db ? da - db : db - da);
}

/// sincos bound: <= 4 ulp, or <= 1e-16 absolute near the zeros where the
/// result underflows the relative scale.
void expect_sincos_close(double x) {
  double s = 0.0, c = 0.0;
  fastmath::sincos(x, s, c);
  const double rs = std::sin(x);
  const double rc = std::cos(x);
  EXPECT_TRUE(ulp_distance(s, rs) <= 4 || std::abs(s - rs) <= 1e-16)
      << "sin(" << x << "): got " << s << " want " << rs << " ("
      << ulp_distance(s, rs) << " ulp)";
  EXPECT_TRUE(ulp_distance(c, rc) <= 4 || std::abs(c - rc) <= 1e-16)
      << "cos(" << x << "): got " << c << " want " << rc << " ("
      << ulp_distance(c, rc) << " ulp)";
}

void expect_log_close(double x) {
  const double got = fastmath::log_pos(x);
  const double want = std::log(x);
  EXPECT_TRUE(ulp_distance(got, want) <= 2 || std::abs(got - want) <= 1e-18)
      << "log(" << x << "): got " << got << " want " << want << " ("
      << ulp_distance(got, want) << " ulp)";
}

TEST(FastmathTest, SincosGridAcrossDomain) {
  // Dense uniform grid over the full valid domain, hitting both halves.
  const double lim = fastmath::kSincosMaxArg;
  const int n = 200001;
  for (int i = 0; i < n; ++i) {
    const double x = -lim + (2.0 * lim) * static_cast<double>(i) /
                               static_cast<double>(n - 1);
    expect_sincos_close(x);
    if (::testing::Test::HasFailure()) break;  // one report, not 200k
  }
}

TEST(FastmathTest, SincosNearReductionBoundaries) {
  // Points adjacent to k*pi/2, where the reduced argument is smallest and
  // the quadrant switch in the kernel happens: the worst spots for both
  // cancellation and an off-by-one k.
  for (int k = -16; k <= 16; ++k) {
    const double boundary = static_cast<double>(k) * (M_PI / 2.0);
    if (std::abs(boundary) > fastmath::kSincosMaxArg) continue;
    for (const double eps :
         {0.0, 1e-16, -1e-16, 1e-12, -1e-12, 1e-8, -1e-8, 1e-4, -1e-4}) {
      const double x = boundary + eps;
      if (std::abs(x) > fastmath::kSincosMaxArg) continue;
      expect_sincos_close(x);
    }
  }
}

TEST(FastmathTest, SincosRandomPoints) {
  Rng rng(20140204);
  for (int i = 0; i < 100000; ++i) {
    expect_sincos_close(rng.uniform(-fastmath::kSincosMaxArg,
                                    fastmath::kSincosMaxArg));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(FastmathTest, SincosDomainEdges) {
  // Exact identities at 0 and sanity exactly at the documented limits.
  double s = 0.0, c = 0.0;
  fastmath::sincos(0.0, s, c);
  EXPECT_EQ(s, 0.0);
  EXPECT_EQ(c, 1.0);
  fastmath::sincos(-0.0, s, c);
  EXPECT_EQ(s, -0.0);
  EXPECT_EQ(c, 1.0);
  expect_sincos_close(fastmath::kSincosMaxArg);
  expect_sincos_close(-fastmath::kSincosMaxArg);
  expect_sincos_close(std::nextafter(fastmath::kSincosMaxArg, 0.0));
  expect_sincos_close(std::nextafter(-fastmath::kSincosMaxArg, 0.0));
}

TEST(FastmathTest, LogAcrossMagnitudes) {
  // Exponential sweep across the full normal range plus a dense linear one
  // around 1, where log() cancellation is most delicate.
  for (double x = DBL_MIN; x < 1e300; x *= 1.7) expect_log_close(x);
  for (int i = -1000; i <= 1000; ++i)
    expect_log_close(1.0 + static_cast<double>(i) * 1e-6);
  Rng rng(20140204);
  for (int i = 0; i < 100000; ++i) {
    expect_log_close(std::exp(rng.uniform(-700.0, 700.0)));
    if (::testing::Test::HasFailure()) break;
  }
}

TEST(FastmathTest, LogDomainEdges) {
  EXPECT_EQ(fastmath::log_pos(1.0), 0.0);  // exact by construction (k=0, f=0)
  expect_log_close(DBL_MIN);                       // smallest normal
  expect_log_close(DBL_MAX);                       // largest finite
  expect_log_close(std::nextafter(1.0, 0.0));      // 1 - ulp
  expect_log_close(std::nextafter(1.0, 2.0));      // 1 + ulp
  expect_log_close(2.0);
  expect_log_close(0.5);
  // sqrt(2)/2 boundary of the significand normalization, both sides.
  expect_log_close(std::nextafter(M_SQRT1_2, 0.0));
  expect_log_close(std::nextafter(M_SQRT1_2, 1.0));
}

}  // namespace
}  // namespace mobiwlan
