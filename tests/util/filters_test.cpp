// Tests for the classifier's filter primitives: EWMA, moving average,
// per-period median aggregation, and the monotone trend window.
#include "util/filters.hpp"

#include <gtest/gtest.h>

namespace mobiwlan {
namespace {

TEST(EwmaTest, FirstSamplePrimes) {
  Ewma e(0.125);
  EXPECT_FALSE(e.primed());
  e.add(4.0);
  EXPECT_TRUE(e.primed());
  EXPECT_DOUBLE_EQ(e.value(), 4.0);
}

TEST(EwmaTest, UpdateRule) {
  Ewma e(0.25);
  e.add(0.0);
  e.add(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25);
  e.add(1.0);
  EXPECT_DOUBLE_EQ(e.value(), 0.25 + 0.75 * 0.25);
}

TEST(EwmaTest, HighAlphaTracksFast) {
  Ewma slow(1.0 / 16.0);
  Ewma fast(1.0 / 2.0);
  slow.add(0.0);
  fast.add(0.0);
  for (int i = 0; i < 4; ++i) {
    slow.add(1.0);
    fast.add(1.0);
  }
  EXPECT_GT(fast.value(), slow.value());
}

TEST(EwmaTest, ResetClears) {
  Ewma e(0.5);
  e.add(10.0);
  e.reset();
  EXPECT_FALSE(e.primed());
  e.add(2.0);
  EXPECT_DOUBLE_EQ(e.value(), 2.0);
}

TEST(EwmaTest, SetAlpha) {
  Ewma e(0.5);
  e.set_alpha(0.125);
  EXPECT_DOUBLE_EQ(e.alpha(), 0.125);
}

TEST(MovingAverageTest, EmptyIsZero) {
  MovingAverage m(3);
  EXPECT_DOUBLE_EQ(m.value(), 0.0);
  EXPECT_EQ(m.count(), 0u);
  EXPECT_FALSE(m.full());
}

TEST(MovingAverageTest, PartialWindow) {
  MovingAverage m(4);
  m.add(2.0);
  m.add(4.0);
  EXPECT_DOUBLE_EQ(m.value(), 3.0);
  EXPECT_FALSE(m.full());
}

TEST(MovingAverageTest, SlidesOldestOut) {
  MovingAverage m(2);
  m.add(1.0);
  m.add(3.0);
  m.add(5.0);
  EXPECT_TRUE(m.full());
  EXPECT_DOUBLE_EQ(m.value(), 4.0);
}

TEST(MovingAverageTest, ZeroWindowBecomesOne) {
  MovingAverage m(0);
  m.add(1.0);
  m.add(9.0);
  EXPECT_DOUBLE_EQ(m.value(), 9.0);
}

TEST(MovingAverageTest, ResetClears) {
  MovingAverage m(3);
  m.add(5.0);
  m.reset();
  EXPECT_EQ(m.count(), 0u);
  EXPECT_DOUBLE_EQ(m.value(), 0.0);
}

TEST(MedianAggregatorTest, FlushEmptyIsNullopt) {
  MedianAggregator a;
  EXPECT_FALSE(a.flush().has_value());
}

TEST(MedianAggregatorTest, FlushReturnsMedianAndClears) {
  MedianAggregator a;
  a.add(5.0);
  a.add(1.0);
  a.add(9.0);
  EXPECT_EQ(a.pending_count(), 3u);
  const auto m = a.flush();
  ASSERT_TRUE(m.has_value());
  EXPECT_DOUBLE_EQ(*m, 5.0);
  EXPECT_EQ(a.pending_count(), 0u);
  EXPECT_FALSE(a.flush().has_value());
}

TEST(MedianAggregatorTest, MedianRobustToOutlier) {
  MedianAggregator a;
  for (double v : {10.0, 10.0, 10.0, 10.0, 1000.0}) a.add(v);
  EXPECT_DOUBLE_EQ(*a.flush(), 10.0);
}

TEST(TrendWindowTest, NotFullNoTrend) {
  TrendWindow w(4);
  w.add(1.0);
  w.add(2.0);
  w.add(3.0);
  EXPECT_FALSE(w.full());
  EXPECT_FALSE(w.increasing());
  EXPECT_FALSE(w.decreasing());
}

TEST(TrendWindowTest, StrictlyIncreasing) {
  TrendWindow w(4);
  for (double v : {1.0, 2.0, 3.0, 4.0}) w.add(v);
  EXPECT_TRUE(w.increasing());
  EXPECT_FALSE(w.decreasing());
  EXPECT_DOUBLE_EQ(w.net_change(), 3.0);
}

TEST(TrendWindowTest, StrictlyDecreasing) {
  TrendWindow w(4);
  for (double v : {4.0, 3.0, 2.0, 1.0}) w.add(v);
  EXPECT_TRUE(w.decreasing());
  EXPECT_FALSE(w.increasing());
}

TEST(TrendWindowTest, MinChangeGate) {
  TrendWindow w(3);
  for (double v : {1.0, 1.2, 1.4}) w.add(v);
  EXPECT_TRUE(w.increasing(0.3));
  EXPECT_FALSE(w.increasing(0.5));
}

TEST(TrendWindowTest, SlackAbsorbsSmallDips) {
  TrendWindow w(4, 0.5);
  for (double v : {1.0, 2.0, 1.8, 3.0}) w.add(v);  // dip of 0.2 < slack
  EXPECT_TRUE(w.increasing(1.0));
}

TEST(TrendWindowTest, LargeDipBreaksTrend) {
  TrendWindow w(4, 0.5);
  for (double v : {1.0, 2.0, 1.0, 3.0}) w.add(v);  // dip of 1.0 > slack
  EXPECT_FALSE(w.increasing());
}

TEST(TrendWindowTest, SlidesWindow) {
  TrendWindow w(3);
  for (double v : {9.0, 1.0, 2.0, 3.0}) w.add(v);  // the 9 slid out
  EXPECT_TRUE(w.increasing());
}

TEST(TrendWindowTest, FlatIsNeither) {
  TrendWindow w(3);
  for (double v : {2.0, 2.0, 2.0}) w.add(v);
  EXPECT_FALSE(w.increasing());   // net change is 0, not > 0
  EXPECT_FALSE(w.decreasing());
}

TEST(TrendWindowTest, ResetEmpties) {
  TrendWindow w(3);
  for (double v : {1.0, 2.0, 3.0}) w.add(v);
  w.reset();
  EXPECT_EQ(w.count(), 0u);
  EXPECT_FALSE(w.increasing());
}

TEST(TrendWindowTest, WindowOfOneBecomesTwo) {
  TrendWindow w(1);
  w.add(1.0);
  EXPECT_FALSE(w.increasing());
  w.add(2.0);
  EXPECT_TRUE(w.increasing());
}

class TrendSlopeSweep : public ::testing::TestWithParam<double> {};

TEST_P(TrendSlopeSweep, DetectsLinearRamps) {
  const double slope = GetParam();
  TrendWindow w(4, 0.1);
  for (int i = 0; i < 4; ++i) w.add(slope * i);
  if (slope > 0.0) {
    EXPECT_TRUE(w.increasing(slope));
  } else if (slope < 0.0) {
    EXPECT_TRUE(w.decreasing(-slope));
  } else {
    EXPECT_FALSE(w.increasing());
    EXPECT_FALSE(w.decreasing());
  }
}

INSTANTIATE_TEST_SUITE_P(Slopes, TrendSlopeSweep,
                         ::testing::Values(-2.0, -0.5, 0.0, 0.5, 2.0));

}  // namespace
}  // namespace mobiwlan
