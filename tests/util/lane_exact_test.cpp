// lane_exact_test — the scalar mirrors in util/lane_math.hpp must be
// *bitwise* equal to one lane of the AVX2 kernels in util/simd_math.hpp,
// and the dispatch sites built on them (the batched channel engine, the
// Box-Muller noise fill, the Eq.-1 similarity kernel) must produce
// bit-identical outputs whether the scalar or the AVX2 tier runs. This is
// the foundation of the campus determinism contract across hosts: a
// non-AVX2 machine reproduces an AVX2 machine's digests exactly.
//
// Every test skips on hosts without AVX2+FMA (there is no vector kernel to
// compare against; the mirrors are then simply the only implementation).
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

#include "chan/channel.hpp"
#include "chan/channel_batch.hpp"
#include "core/csi_similarity.hpp"
#include "util/lane_math.hpp"
#include "util/rng.hpp"
#include "util/simd.hpp"
#include "../chan/channel_golden_cases.hpp"

#if defined(__x86_64__)
#include <immintrin.h>

#include "util/simd_math.hpp"
#endif

namespace mobiwlan {
namespace {

bool host_has_avx2() { return simd::avx2fma_supported(); }

#if defined(__x86_64__)

// Broadcast-one-lane wrappers: everything touching __m256d needs the
// target attribute, so the comparisons live here.
__attribute__((target("avx2,fma"))) void vsincos1(double x, double& s,
                                                  double& c) {
  __m256d vs, vc;
  simdmath::vsincos(_mm256_set1_pd(x), vs, vc);
  alignas(32) double ls[4], lc[4];
  _mm256_store_pd(ls, vs);
  _mm256_store_pd(lc, vc);
  s = ls[0];
  c = lc[0];
}

__attribute__((target("avx2,fma"))) double vlog_pos1(double x) {
  alignas(32) double l[4];
  _mm256_store_pd(l, simdmath::vlog_pos(_mm256_set1_pd(x)));
  return l[0];
}

__attribute__((target("avx2,fma"))) double vexp21(double x) {
  alignas(32) double l[4];
  _mm256_store_pd(l, simdmath::vexp2(_mm256_set1_pd(x)));
  return l[0];
}

#endif  // __x86_64__

std::uint64_t dbits(double x) {
  std::uint64_t u;
  std::memcpy(&u, &x, sizeof u);
  return u;
}

TEST(LaneExact, SincosMirrorsVsincosBitwise) {
#if defined(__x86_64__)
  if (!host_has_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
  Rng rng(0xabcdef12345ULL);
  for (int i = 0; i < 200000; ++i) {
    // Sweep the full wide-argument domain plus a dense small-angle band.
    const double x = (i % 2 == 0)
                         ? rng.uniform(-fastmath::kSincosWideMaxArg,
                                       fastmath::kSincosWideMaxArg)
                         : rng.uniform(-8.0, 8.0);
    double s_lane, c_lane, s_vec, c_vec;
    lanemath::sincos(x, s_lane, c_lane);
    vsincos1(x, s_vec, c_vec);
    ASSERT_EQ(dbits(s_lane), dbits(s_vec)) << "sin(" << x << ")";
    ASSERT_EQ(dbits(c_lane), dbits(c_vec)) << "cos(" << x << ")";
  }
#else
  GTEST_SKIP() << "x86-64 only";
#endif
}

TEST(LaneExact, LogPosMirrorsVlogPosBitwise) {
#if defined(__x86_64__)
  if (!host_has_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
  Rng rng(0x5151515151ULL);
  for (int i = 0; i < 200000; ++i) {
    // Positive normals across a wide exponent range, including the
    // Box-Muller domain (0, 1].
    const double mant = rng.uniform(0.5, 2.0);
    const int expo = rng.uniform_int(-60, 60);
    const double x = (i % 2 == 0) ? std::ldexp(mant, expo)
                                  : 1.0 - rng.uniform();
    ASSERT_EQ(dbits(lanemath::log_pos(x)), dbits(vlog_pos1(x)))
        << "log(" << x << ")";
  }
#else
  GTEST_SKIP() << "x86-64 only";
#endif
}

TEST(LaneExact, Exp2MirrorsVexp2Bitwise) {
#if defined(__x86_64__)
  if (!host_has_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
  Rng rng(0x77aa77aa77ULL);
  for (int i = 0; i < 200000; ++i) {
    const double x = rng.uniform(-250.0, 250.0);
    ASSERT_EQ(dbits(lanemath::exp2(x)), dbits(vexp21(x)))
        << "exp2(" << x << ")";
  }
#else
  GTEST_SKIP() << "x86-64 only";
#endif
}

/// Pins the SIMD tier for the duration of a scope.
struct TierGuard {
  explicit TierGuard(int tier) { simd::set_forced_tier(tier); }
  ~TierGuard() { simd::set_forced_tier(-1); }
};

void expect_sample_bits_equal(const ChannelSample& a, const ChannelSample& b,
                              std::size_t link) {
  ASSERT_EQ(a.csi.raw().size(), b.csi.raw().size());
  for (std::size_t k = 0; k < a.csi.raw().size(); ++k) {
    ASSERT_EQ(dbits(a.csi.raw()[k].real()), dbits(b.csi.raw()[k].real()))
        << "link " << link << " re[" << k << "]";
    ASSERT_EQ(dbits(a.csi.raw()[k].imag()), dbits(b.csi.raw()[k].imag()))
        << "link " << link << " im[" << k << "]";
  }
  EXPECT_EQ(dbits(a.rssi_dbm), dbits(b.rssi_dbm)) << "link " << link;
  EXPECT_EQ(dbits(a.tof_cycles), dbits(b.tof_cycles)) << "link " << link;
  EXPECT_EQ(dbits(a.snr_db), dbits(b.snr_db)) << "link " << link;
}

TEST(TierBitwise, BatchSamplesIdenticalAcrossTiers) {
  if (!host_has_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";

  // Two independent realizations of the golden links, one batch per tier.
  std::vector<std::unique_ptr<WirelessChannel>> links_s, links_v;
  ChannelBatch batch_s, batch_v;
  for (std::size_t idx = 0; idx < goldencase::kNumCases; ++idx) {
    links_s.push_back(goldencase::make_golden_channel(idx));
    links_v.push_back(goldencase::make_golden_channel(idx));
    batch_s.add_link(links_s.back().get());
    batch_v.add_link(links_v.back().get());
  }
  ChannelBatch::Scratch scratch;
  std::vector<ChannelSample> out_s(goldencase::kNumCases);
  std::vector<ChannelSample> out_v(goldencase::kNumCases);

  for (const double t : {0.0, 0.25, 1.0, 2.5, 4.0}) {
    {
      TierGuard g(0);
      batch_s.sample_range(t, 0, goldencase::kNumCases, out_s.data(),
                           scratch);
    }
    {
      TierGuard g(1);
      batch_v.sample_range(t, 0, goldencase::kNumCases, out_v.data(),
                           scratch);
    }
    for (std::size_t i = 0; i < goldencase::kNumCases; ++i) {
      SCOPED_TRACE(::testing::Message()
                   << goldencase::case_name(i) << " at t=" << t);
      expect_sample_bits_equal(out_s[i], out_v[i], i);
    }
  }
}

TEST(TierBitwise, SimilarityIdenticalAcrossTiers) {
  if (!host_has_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
  std::vector<CsiMatrix> snaps;
  for (std::size_t idx = 0; idx < goldencase::kNumCases; ++idx) {
    auto ch = goldencase::make_golden_channel(idx);
    snaps.push_back(ch->csi_at(0.0));
    snaps.push_back(ch->csi_at(0.5));
  }
  CsiSimilarityScratch scratch;
  for (std::size_t i = 0; i + 1 < snaps.size(); ++i) {
    double sim_s, sim_v;
    {
      TierGuard g(0);
      sim_s = csi_similarity(snaps[i], snaps[i + 1], scratch);
    }
    {
      TierGuard g(1);
      sim_v = csi_similarity(snaps[i], snaps[i + 1], scratch);
    }
    EXPECT_EQ(dbits(sim_s), dbits(sim_v)) << "pair " << i;
  }
}

TEST(TierBitwise, NoiseFillIdenticalAcrossTiers) {
  if (!host_has_avx2()) GTEST_SKIP() << "no AVX2+FMA on this host";
  // Odd/even lengths and a pending cached deviate all hit the vector /
  // mirror / shared-remainder splits differently; every combination must
  // stay bitwise tier-invariant.
  for (const std::size_t n : {1u, 3u, 4u, 7u, 8u, 28u, 56u, 57u}) {
    for (const bool prime_cached : {false, true}) {
      std::vector<cplx> buf_s(n, cplx{0.0, 0.0});
      std::vector<cplx> buf_v(n, cplx{0.0, 0.0});
      {
        TierGuard g(0);
        Rng rng(0x1234u + n);
        if (prime_cached) (void)rng.gaussian();  // leaves a cached deviate
        rng.add_complex_gaussian(buf_s.data(), n, 2.0);
      }
      {
        TierGuard g(1);
        Rng rng(0x1234u + n);
        if (prime_cached) (void)rng.gaussian();
        rng.add_complex_gaussian(buf_v.data(), n, 2.0);
      }
      for (std::size_t k = 0; k < n; ++k) {
        ASSERT_EQ(dbits(buf_s[k].real()), dbits(buf_v[k].real()))
            << "n=" << n << " cached=" << prime_cached << " re[" << k << "]";
        ASSERT_EQ(dbits(buf_s[k].imag()), dbits(buf_v[k].imag()))
            << "n=" << n << " cached=" << prime_cached << " im[" << k << "]";
      }
    }
  }
}

}  // namespace
}  // namespace mobiwlan
