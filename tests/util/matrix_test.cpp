// Tests for the complex matrix algebra behind the MIMO precoders.
#include "util/matrix.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobiwlan {
namespace {

CMatrix random_matrix(std::size_t rows, std::size_t cols, Rng& rng) {
  CMatrix m(rows, cols);
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = rng.complex_gaussian();
  return m;
}

double max_abs_diff(const CMatrix& a, const CMatrix& b) {
  double worst = 0.0;
  for (std::size_t r = 0; r < a.rows(); ++r)
    for (std::size_t c = 0; c < a.cols(); ++c)
      worst = std::max(worst, std::abs(a(r, c) - b(r, c)));
  return worst;
}

TEST(CMatrixTest, IdentityDiagonal) {
  const CMatrix i = CMatrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 3; ++c)
      EXPECT_EQ(i(r, c), (r == c ? cplx{1.0} : cplx{0.0}));
}

TEST(CMatrixTest, InitializerList) {
  const CMatrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_EQ(m(1, 0), cplx{3.0});
}

TEST(CMatrixTest, RaggedInitializerThrows) {
  EXPECT_THROW((CMatrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(CMatrixTest, AdditionAndSubtraction) {
  const CMatrix a{{1.0, 2.0}};
  const CMatrix b{{3.0, 5.0}};
  const CMatrix sum = a + b;
  EXPECT_EQ(sum(0, 1), cplx{7.0});
  const CMatrix diff = b - a;
  EXPECT_EQ(diff(0, 0), cplx{2.0});
}

TEST(CMatrixTest, DimensionMismatchThrows) {
  const CMatrix a(2, 2);
  const CMatrix b(3, 2);
  EXPECT_THROW(a + b, std::invalid_argument);
  EXPECT_THROW(a - b, std::invalid_argument);
  EXPECT_THROW(a * CMatrix(3, 1), std::invalid_argument);
}

TEST(CMatrixTest, MultiplyKnown) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const CMatrix b{{5.0, 6.0}, {7.0, 8.0}};
  const CMatrix p = a * b;
  EXPECT_EQ(p(0, 0), cplx{19.0});
  EXPECT_EQ(p(1, 1), cplx{50.0});
}

TEST(CMatrixTest, ScalarMultiply) {
  const CMatrix a{{1.0, cplx(0.0, 1.0)}};
  const CMatrix s = a * cplx(0.0, 2.0);
  EXPECT_EQ(s(0, 0), cplx(0.0, 2.0));
  EXPECT_EQ(s(0, 1), cplx(-2.0, 0.0));
}

TEST(CMatrixTest, HermitianConjugates) {
  const CMatrix a{{cplx(1.0, 2.0), cplx(3.0, -1.0)}};
  const CMatrix h = a.hermitian();
  EXPECT_EQ(h.rows(), 2u);
  EXPECT_EQ(h.cols(), 1u);
  EXPECT_EQ(h(0, 0), cplx(1.0, -2.0));
  EXPECT_EQ(h(1, 0), cplx(3.0, 1.0));
}

TEST(CMatrixTest, InverseOfIdentityIsIdentity) {
  const CMatrix i = CMatrix::identity(4);
  EXPECT_LT(max_abs_diff(i.inverse(), i), 1e-12);
}

TEST(CMatrixTest, InverseRoundTrip) {
  Rng rng(5);
  for (int trial = 0; trial < 20; ++trial) {
    const CMatrix a = random_matrix(3, 3, rng);
    const CMatrix prod = a * a.inverse();
    EXPECT_LT(max_abs_diff(prod, CMatrix::identity(3)), 1e-9);
  }
}

TEST(CMatrixTest, InverseNonSquareThrows) {
  EXPECT_THROW(CMatrix(2, 3).inverse(), std::domain_error);
}

TEST(CMatrixTest, SingularThrows) {
  CMatrix a{{1.0, 2.0}, {2.0, 4.0}};
  EXPECT_THROW(a.inverse(), std::domain_error);
}

TEST(CMatrixTest, PseudoInverseIsRightInverse) {
  // H * H^+ = I for full-row-rank H (the zero-forcing property).
  Rng rng(6);
  for (int trial = 0; trial < 20; ++trial) {
    const CMatrix h = random_matrix(2, 3, rng);
    const CMatrix prod = h * h.pseudo_inverse();
    EXPECT_LT(max_abs_diff(prod, CMatrix::identity(2)), 1e-9) << "trial " << trial;
  }
}

TEST(CMatrixTest, PseudoInverseSquareMatchesInverse) {
  Rng rng(7);
  const CMatrix h = random_matrix(3, 3, rng);
  EXPECT_LT(max_abs_diff(h.pseudo_inverse(), h.inverse()), 1e-8);
}

TEST(CMatrixTest, FrobeniusNorm) {
  const CMatrix a{{3.0, 0.0}, {0.0, 4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
}

TEST(CMatrixTest, NormalizedHitsTarget) {
  const CMatrix a{{3.0, 4.0}};
  EXPECT_NEAR(a.normalized(2.0).frobenius_norm(), 2.0, 1e-12);
}

TEST(CMatrixTest, NormalizeZeroMatrixIsNoop) {
  const CMatrix z(2, 2);
  EXPECT_DOUBLE_EQ(z.normalized().frobenius_norm(), 0.0);
}

TEST(CMatrixTest, ColumnAndRowVectors) {
  const CMatrix a{{1.0, 2.0}, {3.0, 4.0}};
  const auto col = a.col_vector(1);
  EXPECT_EQ(col[0], cplx{2.0});
  EXPECT_EQ(col[1], cplx{4.0});
  const auto row = a.row_vector(1);
  EXPECT_EQ(row[0], cplx{3.0});
}

TEST(CMatrixTest, ColumnFactory) {
  const CMatrix c = CMatrix::column({1.0, 2.0, 3.0});
  EXPECT_EQ(c.rows(), 3u);
  EXPECT_EQ(c.cols(), 1u);
  EXPECT_EQ(c(2, 0), cplx{3.0});
}

TEST(VectorOpsTest, InnerProductConjugatesFirst) {
  const std::vector<cplx> a{cplx(0.0, 1.0)};
  const std::vector<cplx> b{cplx(0.0, 1.0)};
  EXPECT_EQ(inner_product(a, b), cplx(1.0, 0.0));
}

TEST(VectorOpsTest, InnerProductSizeMismatchThrows) {
  EXPECT_THROW(inner_product({1.0}, {1.0, 2.0}), std::invalid_argument);
}

TEST(VectorOpsTest, VectorNorm) {
  EXPECT_DOUBLE_EQ(vector_norm({cplx(3.0, 0.0), cplx(0.0, 4.0)}), 5.0);
}

class PinvSizeSweep
    : public ::testing::TestWithParam<std::pair<std::size_t, std::size_t>> {};

TEST_P(PinvSizeSweep, RightInverseAcrossShapes) {
  const auto [rows, cols] = GetParam();
  Rng rng(100 + rows * 10 + cols);
  const CMatrix h = random_matrix(rows, cols, rng);
  const CMatrix prod = h * h.pseudo_inverse();
  EXPECT_LT(max_abs_diff(prod, CMatrix::identity(rows)), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PinvSizeSweep,
                         ::testing::Values(std::make_pair(1u, 3u),
                                           std::make_pair(2u, 3u),
                                           std::make_pair(3u, 3u),
                                           std::make_pair(2u, 4u),
                                           std::make_pair(3u, 4u)));

}  // namespace
}  // namespace mobiwlan
