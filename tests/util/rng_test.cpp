// Tests for the xoshiro256++ RNG: determinism, distribution moments, and
// stream independence — the properties every stochastic experiment relies on.
#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "util/stats.hpp"

namespace mobiwlan {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDifferentStreams) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.0);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.0);
  }
}

TEST(RngTest, UniformMeanIsCentered) {
  Rng rng(9);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.01);
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(10);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) {
    const int v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  OnlineStats s;
  for (int i = 0; i < 100000; ++i) s.add(rng.gaussian());
  EXPECT_NEAR(s.mean(), 0.0, 0.02);
  EXPECT_NEAR(s.stddev(), 1.0, 0.02);
}

TEST(RngTest, GaussianScaled) {
  Rng rng(12);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.gaussian(3.0, 2.0));
  EXPECT_NEAR(s.mean(), 3.0, 0.05);
  EXPECT_NEAR(s.stddev(), 2.0, 0.05);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.exponential(2.5));
  EXPECT_NEAR(s.mean(), 2.5, 0.1);
}

TEST(RngTest, ExponentialNonNegative) {
  Rng rng(14);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.exponential(1.0), 0.0);
}

TEST(RngTest, RayleighMean) {
  // Rayleigh(sigma) has mean sigma*sqrt(pi/2).
  Rng rng(15);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(rng.rayleigh(1.0));
  EXPECT_NEAR(s.mean(), std::sqrt(3.14159265 / 2.0), 0.02);
}

TEST(RngTest, ComplexGaussianPower) {
  Rng rng(16);
  OnlineStats s;
  for (int i = 0; i < 50000; ++i) s.add(std::norm(rng.complex_gaussian(4.0)));
  EXPECT_NEAR(s.mean(), 4.0, 0.1);
}

TEST(RngTest, RicianUnitMeanPower) {
  Rng rng(17);
  for (double k : {0.5, 2.0, 10.0}) {
    OnlineStats s;
    for (int i = 0; i < 50000; ++i) s.add(std::norm(rng.rician(k)));
    EXPECT_NEAR(s.mean(), 1.0, 0.05) << "K=" << k;
  }
}

TEST(RngTest, PhaseInRange) {
  Rng rng(18);
  for (int i = 0; i < 1000; ++i) {
    const double p = rng.phase();
    EXPECT_GE(p, 0.0);
    EXPECT_LT(p, 2.0 * 3.14159266);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ChanceFrequency) {
  Rng rng(20);
  int hits = 0;
  for (int i = 0; i < 100000; ++i)
    if (rng.chance(0.3)) ++hits;
  EXPECT_NEAR(hits / 100000.0, 0.3, 0.01);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(21);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitIsDeterministic) {
  Rng a1(22);
  Rng a2(22);
  Rng b1 = a1.split();
  Rng b2 = a2.split();
  for (int i = 0; i < 50; ++i) EXPECT_EQ(b1.next_u64(), b2.next_u64());
}

TEST(RngTest, StreamIsDeterministic) {
  Rng a(31);
  Rng b(31);
  Rng s1 = a.stream(7);
  Rng s2 = b.stream(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(s1.next_u64(), s2.next_u64());
}

TEST(RngTest, StreamDerivationIsOrderIndependent) {
  // Deriving streams in a different order, or after consuming generator
  // state, must not change what each stream produces — the property the
  // parallel experiment runner's determinism contract rests on.
  Rng a(32);
  Rng s5_first = a.stream(5);
  Rng s3_after = a.stream(3);
  for (int i = 0; i < 1000; ++i) (void)a.next_u64();  // burn parent state
  Rng b(32);
  Rng s3_first = b.stream(3);
  Rng s5_after = b.stream(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(s3_first.next_u64(), s3_after.next_u64());
    EXPECT_EQ(s5_first.next_u64(), s5_after.next_u64());
  }
}

TEST(RngTest, DistinctStreamsAreUncorrelated) {
  // Adjacent stream ids must give streams with no visible correlation:
  // no shared outputs and an uncorrelated sign pattern.
  Rng master(33);
  Rng s0 = master.stream(0);
  Rng s1 = master.stream(1);
  int equal = 0;
  int sign_agree = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    const std::uint64_t u = s0.next_u64();
    const std::uint64_t v = s1.next_u64();
    if (u == v) ++equal;
    if ((u >> 63) == (v >> 63)) ++sign_agree;
  }
  EXPECT_EQ(equal, 0);
  EXPECT_NEAR(sign_agree / static_cast<double>(n), 0.5, 0.02);
}

TEST(RngTest, StreamSeedMatchesSplitmixFormula) {
  // The contract documented in rng.hpp: substream seed = splitmix64(seed ^ id).
  // Reproduce splitmix64 inline so the formula itself is pinned by a test.
  const std::uint64_t seed = 20140204;
  const std::uint64_t id = 42;
  std::uint64_t x = (seed ^ id) + 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  z ^= z >> 31;
  EXPECT_EQ(Rng(seed).stream(id).seed(), z);
}

class RngSeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngSeedSweep, UniformMeanStableAcrossSeeds) {
  Rng rng(GetParam());
  OnlineStats s;
  for (int i = 0; i < 20000; ++i) s.add(rng.uniform());
  EXPECT_NEAR(s.mean(), 0.5, 0.02);
  EXPECT_NEAR(s.stddev(), std::sqrt(1.0 / 12.0), 0.02);
}

TEST_P(RngSeedSweep, GaussianSymmetricAcrossSeeds) {
  Rng rng(GetParam());
  int positive = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i)
    if (rng.gaussian() > 0) ++positive;
  EXPECT_NEAR(positive / static_cast<double>(n), 0.5, 0.02);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngSeedSweep,
                         ::testing::Values(0ULL, 1ULL, 42ULL, 0xdeadbeefULL,
                                           0xffffffffffffffffULL));

}  // namespace
}  // namespace mobiwlan
