// Tests for bootstrap confidence intervals.
#include "util/significance.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobiwlan {
namespace {

std::vector<double> gaussian_sample(double mean, double sd, int n,
                                    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out;
  for (int i = 0; i < n; ++i) out.push_back(rng.gaussian(mean, sd));
  return out;
}

TEST(BootstrapTest, CiContainsPointEstimate) {
  const auto xs = gaussian_sample(10.0, 2.0, 40, 1);
  const BootstrapInterval ci = bootstrap_median_ci(xs);
  EXPECT_LE(ci.lo, ci.point);
  EXPECT_GE(ci.hi, ci.point);
  EXPECT_NEAR(ci.point, 10.0, 1.0);
}

TEST(BootstrapTest, WiderConfidenceWiderInterval) {
  const auto xs = gaussian_sample(5.0, 1.0, 30, 2);
  const BootstrapInterval narrow = bootstrap_median_ci(xs, 0.80);
  const BootstrapInterval wide = bootstrap_median_ci(xs, 0.99);
  EXPECT_LE(wide.lo, narrow.lo);
  EXPECT_GE(wide.hi, narrow.hi);
}

TEST(BootstrapTest, MoreSamplesTighterInterval) {
  const auto small = gaussian_sample(0.0, 1.0, 10, 3);
  const auto large = gaussian_sample(0.0, 1.0, 200, 4);
  const auto ci_small = bootstrap_median_ci(small);
  const auto ci_large = bootstrap_median_ci(large);
  EXPECT_LT(ci_large.hi - ci_large.lo, ci_small.hi - ci_small.lo);
}

TEST(BootstrapTest, EmptySampleThrows) {
  EXPECT_THROW(bootstrap_median_ci({}), std::invalid_argument);
  EXPECT_THROW(bootstrap_median_diff_ci({}, {1.0}), std::invalid_argument);
}

TEST(BootstrapTest, DeterministicGivenSeed) {
  const auto xs = gaussian_sample(3.0, 1.0, 25, 5);
  const auto a = bootstrap_median_ci(xs, 0.95, 500, 7);
  const auto b = bootstrap_median_ci(xs, 0.95, 500, 7);
  EXPECT_DOUBLE_EQ(a.lo, b.lo);
  EXPECT_DOUBLE_EQ(a.hi, b.hi);
}

TEST(BootstrapTest, DiffCiSeparatesDistinctGroups) {
  const auto a = gaussian_sample(12.0, 1.0, 30, 8);
  const auto b = gaussian_sample(8.0, 1.0, 30, 9);
  const BootstrapInterval ci = bootstrap_median_diff_ci(a, b);
  EXPECT_GT(ci.lo, 0.0);
  EXPECT_NEAR(ci.point, 4.0, 1.0);
  EXPECT_TRUE(median_significantly_greater(a, b));
}

TEST(BootstrapTest, DiffCiStraddlesZeroForIdenticalGroups) {
  const auto a = gaussian_sample(5.0, 2.0, 30, 10);
  const auto b = gaussian_sample(5.0, 2.0, 30, 11);
  const BootstrapInterval ci = bootstrap_median_diff_ci(a, b);
  EXPECT_LT(ci.lo, 0.0);
  EXPECT_GT(ci.hi, 0.0);
  EXPECT_FALSE(median_significantly_greater(a, b));
}

TEST(BootstrapTest, SingleValueSampleDegenerates) {
  const std::vector<double> one{4.2};
  const BootstrapInterval ci = bootstrap_median_ci(one);
  EXPECT_DOUBLE_EQ(ci.lo, 4.2);
  EXPECT_DOUBLE_EQ(ci.hi, 4.2);
}

}  // namespace
}  // namespace mobiwlan
