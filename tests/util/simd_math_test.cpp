// simd_math domain edges: every vector transcendental documents an input
// domain (|x| <= kSincosWideMaxArg for vsincos, |x| <= 256 for vexp2,
// positive normal finite for vlog_pos, and the fp32 analogues). This suite
// pins two things:
//   1. the extreme *valid* inputs — exactly at the documented edges —
//      produce finite results that agree with the scalar reference (a
//      regression net for the reduction constants, whose failure mode is
//      precisely "fine in the middle, garbage at the edge");
//   2. in debug builds (MOBIWLAN_SIMD_MATH_CHECKS), an out-of-domain lane
//      trips the range assertion instead of silently returning garbage —
//      death tests, compiled out of NDEBUG builds where the assertions are
//      no-ops by design.
#include "util/simd_math.hpp"

#include <bit>
#include <cfloat>
#include <cmath>
#include <cstdint>
#include <cstdio>

#include <gtest/gtest.h>

#include "util/fastmath.hpp"
#include "util/simd.hpp"

#if defined(__x86_64__)

namespace mobiwlan {
namespace {

std::uint64_t ulp_distance(double a, double b) {
  auto ordered = [](double x) -> std::int64_t {
    const std::int64_t bits = std::bit_cast<std::int64_t>(x);
    return bits >= 0 ? bits : std::int64_t(0x8000000000000000ULL) - bits;
  };
  const std::int64_t da = ordered(a);
  const std::int64_t db = ordered(b);
  return static_cast<std::uint64_t>(da > db ? da - db : db - da);
}

std::uint32_t ulp_distance_f32(float a, float b) {
  auto ordered = [](float x) -> std::int32_t {
    const std::int32_t bits = std::bit_cast<std::int32_t>(x);
    return bits >= 0 ? bits : std::int32_t(0x80000000UL) - bits;
  };
  const std::int32_t da = ordered(a);
  const std::int32_t db = ordered(b);
  return static_cast<std::uint32_t>(da > db ? da - db : db - da);
}

// The vexp2 kernel documents |x| <= 256 (see the assertion in
// simd_math.hpp); the fp64 result stays finite through the whole range.
constexpr double kVexp2MaxArg = 256.0;

// Wrappers with the matching target attribute: a baseline-ISA function
// cannot inline the always_inline kernels. Each takes 4/8/16 scalar inputs
// and returns the lanes so the checks below run in plain code.

__attribute__((target("avx2,fma"))) void sincos4(const double* x, double* s,
                                                 double* c) {
  __m256d vs, vc;
  simdmath::vsincos(_mm256_loadu_pd(x), vs, vc);
  _mm256_storeu_pd(s, vs);
  _mm256_storeu_pd(c, vc);
}

__attribute__((target("avx2,fma"))) void log4(const double* x, double* out) {
  _mm256_storeu_pd(out, simdmath::vlog_pos(_mm256_loadu_pd(x)));
}

__attribute__((target("avx2,fma"))) void exp24(const double* x, double* out) {
  _mm256_storeu_pd(out, simdmath::vexp2(_mm256_loadu_pd(x)));
}

__attribute__((target("avx2,fma"))) void sincos8_f32(const float* x, float* s,
                                                     float* c) {
  __m256 vs, vc;
  simdmath::vsincos_f8(_mm256_loadu_ps(x), vs, vc);
  _mm256_storeu_ps(s, vs);
  _mm256_storeu_ps(c, vc);
}

__attribute__((target("avx2,fma"))) void log8_f32(const float* x, float* out) {
  _mm256_storeu_ps(out, simdmath::vlog_pos_f8(_mm256_loadu_ps(x)));
}

__attribute__((target("avx2,fma"))) void exp28_f32(const float* x, float* out) {
  _mm256_storeu_ps(out, simdmath::vexp2_f8(_mm256_loadu_ps(x)));
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) void exp216_f32(
    const float* x, float* out) {
  _mm512_storeu_ps(out, simdmath::vexp2_f16(_mm512_loadu_ps(x)));
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) void log16_f32(
    const float* x, float* out) {
  _mm512_storeu_ps(out, simdmath::vlog_pos_f16(_mm512_loadu_ps(x)));
}

__attribute__((target("avx512f,avx512dq,avx512vl"))) void sincos16_f32(
    const float* x, float* s, float* c) {
  __m512 vs, vc;
  simdmath::vsincos_f16(_mm512_loadu_ps(x), vs, vc);
  _mm512_storeu_ps(s, vs);
  _mm512_storeu_ps(c, vc);
}

TEST(SimdMathTest, Fp64DomainEdgesMatchScalar) {
  if (!simd::avx2fma_supported())
    GTEST_SKIP() << "host lacks AVX2+FMA: vector kernels unavailable";

  // vsincos at the wide-reduction limit, both signs, plus one ulp inside.
  const double lim = fastmath::kSincosWideMaxArg;
  const double xs[4] = {lim, -lim, std::nextafter(lim, 0.0),
                        std::nextafter(-lim, 0.0)};
  double s[4], c[4];
  sincos4(xs, s, c);
  for (int i = 0; i < 4; ++i) {
    double rs, rc;
    fastmath::sincos_wide(xs[i], rs, rc);
    EXPECT_TRUE(std::isfinite(s[i]) && std::isfinite(c[i])) << "x=" << xs[i];
    EXPECT_LE(ulp_distance(s[i], rs), 1u) << "sin x=" << xs[i];
    EXPECT_LE(ulp_distance(c[i], rc), 1u) << "cos x=" << xs[i];
  }

  // vlog_pos at the extremes of the positive normal range.
  const double xl[4] = {DBL_MIN, DBL_MAX, std::nextafter(DBL_MIN, 1.0),
                        std::nextafter(DBL_MAX, 0.0)};
  double l[4];
  log4(xl, l);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(l[i])) << "x=" << xl[i];
    EXPECT_LE(ulp_distance(l[i], fastmath::log_pos(xl[i])), 1u)
        << "log x=" << xl[i];
  }

  // vexp2 at its documented +/-256 edge: finite (2^256 ~ 1.2e77, and
  // 2^-256 is a normal double) and within the scalar budget of std::exp2.
  const double xe[4] = {kVexp2MaxArg, -kVexp2MaxArg,
                        std::nextafter(kVexp2MaxArg, 0.0),
                        std::nextafter(-kVexp2MaxArg, 0.0)};
  double e[4];
  exp24(xe, e);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(std::isfinite(e[i]) && e[i] > 0.0) << "x=" << xe[i];
    EXPECT_LE(ulp_distance(e[i], std::exp2(xe[i])), 4u) << "exp2 x=" << xe[i];
  }
}

TEST(SimdMathTest, Fp32DomainEdgesMatchScalar) {
  if (!simd::avx2fma_supported())
    GTEST_SKIP() << "host lacks AVX2+FMA: vector kernels unavailable";

  // 8 lanes loaded with the edges (padded by repeating the first).
  const float tlim = fastmath::kSincosF32MaxArg;
  const float xt[8] = {tlim, -tlim, std::nextafterf(tlim, 0.0f),
                       std::nextafterf(-tlim, 0.0f), 0.0f, -0.0f, tlim, -tlim};
  float s[16], c[16];
  sincos8_f32(xt, s, c);
  for (int i = 0; i < 8; ++i) {
    float rs, rc;
    fastmath::sincos_f32(xt[i], rs, rc);
    EXPECT_TRUE(std::isfinite(s[i]) && std::isfinite(c[i])) << "x=" << xt[i];
    EXPECT_LE(ulp_distance_f32(s[i], rs), 1u) << "sin x=" << xt[i];
    EXPECT_LE(ulp_distance_f32(c[i], rc), 1u) << "cos x=" << xt[i];
  }

  const float xl[8] = {FLT_MIN, FLT_MAX, std::nextafterf(FLT_MIN, 1.0f),
                       std::nextafterf(FLT_MAX, 0.0f), 1.0f,
                       std::nextafterf(1.0f, 0.0f),
                       std::nextafterf(1.0f, 2.0f), 2.0f};
  float l[16];
  log8_f32(xl, l);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(std::isfinite(l[i])) << "x=" << xl[i];
    EXPECT_LE(ulp_distance_f32(l[i], fastmath::log_pos_f32(xl[i])), 1u)
        << "log x=" << xl[i];
  }

  const float elim = fastmath::kExp2F32MaxArg;
  const float xe[8] = {elim, -elim, std::nextafterf(elim, 0.0f),
                       std::nextafterf(-elim, 0.0f), 0.0f, 0.5f, -0.5f, 1.0f};
  float e[16];
  exp28_f32(xe, e);
  for (int i = 0; i < 8; ++i) {
    EXPECT_TRUE(std::isfinite(e[i]) && e[i] > 0.0f) << "x=" << xe[i];
    // The -126 edge must stay a *normal* float (the documented guarantee).
    EXPECT_GE(e[i], FLT_MIN) << "x=" << xe[i];
    EXPECT_LE(ulp_distance_f32(e[i], fastmath::exp2_f32(xe[i])), 1u)
        << "exp2 x=" << xe[i];
  }

  if (simd::avx512_supported()) {
    // Same edges through the 16-lane ports: bitwise-equal to the 8-lane
    // results (identical operations, twice the width).
    float x16[16], got[16];
    for (int i = 0; i < 16; ++i) x16[i] = xe[i % 8];
    exp216_f32(x16, got);
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                std::bit_cast<std::uint32_t>(e[i % 8]))
          << "exp2 lane " << i;
    for (int i = 0; i < 16; ++i) x16[i] = xl[i % 8];
    log16_f32(x16, got);
    for (int i = 0; i < 16; ++i)
      EXPECT_EQ(std::bit_cast<std::uint32_t>(got[i]),
                std::bit_cast<std::uint32_t>(l[i % 8]))
          << "log lane " << i;
    float s16[16], c16[16];
    for (int i = 0; i < 16; ++i) x16[i] = xt[i % 8];
    sincos16_f32(x16, s16, c16);
    for (int i = 0; i < 16; ++i) {
      EXPECT_EQ(std::bit_cast<std::uint32_t>(s16[i]),
                std::bit_cast<std::uint32_t>(s[i % 8]))
          << "sin lane " << i;
      EXPECT_EQ(std::bit_cast<std::uint32_t>(c16[i]),
                std::bit_cast<std::uint32_t>(c[i % 8]))
          << "cos lane " << i;
    }
  } else {
    std::fputs(
        "[  NOTE    ] host lacks AVX-512 (f/dq/vl): 16-lane edge checks "
        "not run\n",
        stderr);
  }
}

#if defined(MOBIWLAN_SIMD_MATH_CHECKS)

// Debug builds only: one out-of-domain lane must trip the range assertion.
// NDEBUG builds compile the assertions to no-ops, so these tests vanish
// with them — the release contract stays "caller's responsibility".

using SimdMathDeathTest = ::testing::Test;

TEST(SimdMathDeathTest, Fp64OutOfDomainTrips) {
  if (!simd::avx2fma_supported())
    GTEST_SKIP() << "host lacks AVX2+FMA: vector kernels unavailable";
  double out[4], s[4], c[4];
  const double bad_exp[4] = {0.0, 0.0, kVexp2MaxArg * 2.0, 0.0};
  EXPECT_DEATH(exp24(bad_exp, out), "");
  const double bad_log[4] = {1.0, -1.0, 1.0, 1.0};  // negative lane
  EXPECT_DEATH(log4(bad_log, out), "");
  const double bad_trig[4] = {0.0, fastmath::kSincosWideMaxArg * 2.0, 0.0,
                              0.0};
  EXPECT_DEATH(sincos4(bad_trig, s, c), "");
}

TEST(SimdMathDeathTest, Fp32OutOfDomainTrips) {
  if (!simd::avx2fma_supported())
    GTEST_SKIP() << "host lacks AVX2+FMA: vector kernels unavailable";
  float out[8], s[8], c[8];
  const float bad_exp[8] = {0.0f, 0.0f, 0.0f, 0.0f,
                            0.0f, 200.0f, 0.0f, 0.0f};
  EXPECT_DEATH(exp28_f32(bad_exp, out), "");
  const float bad_log[8] = {1.0f, 1.0f, 1.0f, 0.0f,  // zero lane
                            1.0f, 1.0f, 1.0f, 1.0f};
  EXPECT_DEATH(log8_f32(bad_log, out), "");
  const float bad_trig[8] = {0.0f, 0.0f, 0.0f, 0.0f,
                             2048.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_DEATH(sincos8_f32(bad_trig, s, c), "");
}

#endif  // MOBIWLAN_SIMD_MATH_CHECKS

}  // namespace
}  // namespace mobiwlan

#endif  // defined(__x86_64__)
