// Tests for online statistics, quantiles and CDFs.
#include "util/stats.hpp"

#include <gtest/gtest.h>

#include "util/rng.hpp"

namespace mobiwlan {
namespace {

TEST(OnlineStatsTest, EmptyIsZero) {
  OnlineStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(OnlineStatsTest, KnownSequence) {
  OnlineStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance (n-1): sum of squared deviations = 32, / 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
}

TEST(OnlineStatsTest, NegativeValues) {
  OnlineStats s;
  s.add(-3.0);
  s.add(3.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.min(), -3.0);
}

TEST(SampleSetTest, EmptyQuantiles) {
  SampleSet s;
  EXPECT_EQ(s.quantile(0.5), 0.0);
  EXPECT_EQ(s.cdf_at(1.0), 0.0);
  EXPECT_TRUE(s.cdf_points().empty());
}

TEST(SampleSetTest, MedianOfOddCount) {
  SampleSet s({3.0, 1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
}

TEST(SampleSetTest, QuantileInterpolation) {
  SampleSet s({0.0, 10.0});
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 5.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 10.0);
  EXPECT_DOUBLE_EQ(s.quantile(0.25), 2.5);
}

TEST(SampleSetTest, QuantileClampsOutOfRange) {
  SampleSet s({1.0, 2.0});
  EXPECT_DOUBLE_EQ(s.quantile(-0.5), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.5), 2.0);
}

TEST(SampleSetTest, CdfAt) {
  SampleSet s({1.0, 2.0, 3.0, 4.0});
  EXPECT_DOUBLE_EQ(s.cdf_at(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.cdf_at(2.0), 0.5);
  EXPECT_DOUBLE_EQ(s.cdf_at(10.0), 1.0);
}

TEST(SampleSetTest, CdfPointsMonotone) {
  Rng rng(3);
  SampleSet s;
  for (int i = 0; i < 500; ++i) s.add(rng.gaussian());
  const auto pts = s.cdf_points(25);
  ASSERT_EQ(pts.size(), 25u);
  for (std::size_t i = 1; i < pts.size(); ++i) {
    EXPECT_LE(pts[i - 1].first, pts[i].first);
    EXPECT_LE(pts[i - 1].second, pts[i].second);
  }
  EXPECT_DOUBLE_EQ(pts.front().second, 0.0);
  EXPECT_DOUBLE_EQ(pts.back().second, 1.0);
}

TEST(SampleSetTest, AddAfterQueryResorts) {
  SampleSet s({5.0, 1.0});
  EXPECT_DOUBLE_EQ(s.median(), 3.0);
  s.add(100.0);
  EXPECT_DOUBLE_EQ(s.median(), 5.0);
}

TEST(SampleSetTest, AddAllExtends) {
  SampleSet s;
  s.add_all({1.0, 2.0});
  s.add_all({3.0});
  EXPECT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.max(), 3.0);
}

TEST(SampleSetTest, MinMaxMean) {
  SampleSet s({2.0, 8.0, 5.0});
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 8.0);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
}

TEST(HelperTest, MedianOfEven) {
  EXPECT_DOUBLE_EQ(median_of({1.0, 2.0, 3.0, 4.0}), 2.5);
}

TEST(HelperTest, MedianOfSingle) { EXPECT_DOUBLE_EQ(median_of({7.0}), 7.0); }

TEST(HelperTest, MedianOfEmpty) { EXPECT_DOUBLE_EQ(median_of({}), 0.0); }

TEST(HelperTest, MedianUnsorted) {
  EXPECT_DOUBLE_EQ(median_of({9.0, 1.0, 5.0}), 5.0);
}

TEST(HelperTest, StddevOfConstant) {
  EXPECT_DOUBLE_EQ(stddev_of({3.0, 3.0, 3.0}), 0.0);
}

TEST(HelperTest, MeanOfEmpty) { EXPECT_DOUBLE_EQ(mean_of({}), 0.0); }

class QuantileAgreement : public ::testing::TestWithParam<double> {};

TEST_P(QuantileAgreement, CdfInvertsQuantile) {
  // cdf_at(quantile(q)) >= q for any q on a continuous sample.
  Rng rng(77);
  SampleSet s;
  for (int i = 0; i < 2000; ++i) s.add(rng.gaussian());
  const double q = GetParam();
  EXPECT_GE(s.cdf_at(s.quantile(q)), q - 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Quantiles, QuantileAgreement,
                         ::testing::Values(0.05, 0.25, 0.5, 0.75, 0.95));

}  // namespace
}  // namespace mobiwlan
