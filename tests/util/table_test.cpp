// Tests for the bench-output rendering helpers.
#include "util/table.hpp"

#include <gtest/gtest.h>

#include "util/stats.hpp"

namespace mobiwlan {
namespace {

TEST(TablePrinterTest, RendersTitleHeaderAndRows) {
  TablePrinter t("My Table");
  t.set_header({"a", "b"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  const std::string out = t.render();
  EXPECT_NE(out.find("My Table"), std::string::npos);
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("333"), std::string::npos);
}

TEST(TablePrinterTest, HandlesShortRows) {
  TablePrinter t("t");
  t.set_header({"x", "y", "z"});
  t.add_row({"only"});
  EXPECT_NO_THROW(t.render());
}

TEST(TablePrinterTest, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::num(2.0, 0), "2");
}

TEST(TablePrinterTest, PctFormats) { EXPECT_EQ(TablePrinter::pct(0.934), "93.4%"); }

TEST(CdfTableTest, ContainsSeriesNames) {
  SampleSet a({1.0, 2.0, 3.0});
  SampleSet b({4.0, 5.0});
  const std::string out =
      render_cdf_table("dist", {{"alpha", &a}, {"beta", &b}});
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("beta"), std::string::npos);
  EXPECT_NE(out.find("p50"), std::string::npos);
}

TEST(AsciiCdfTest, EmptySamples) {
  SampleSet s;
  const std::string out = render_ascii_cdf("empty", s);
  EXPECT_NE(out.find("no samples"), std::string::npos);
}

TEST(AsciiCdfTest, RendersCurve) {
  SampleSet s;
  for (int i = 0; i < 100; ++i) s.add(static_cast<double>(i));
  const std::string out = render_ascii_cdf("curve", s, 40, 8);
  EXPECT_NE(out.find('*'), std::string::npos);
  // 8 grid lines plus title and axis.
  int lines = 0;
  for (char c : out)
    if (c == '\n') ++lines;
  EXPECT_GE(lines, 9);
}

}  // namespace
}  // namespace mobiwlan
